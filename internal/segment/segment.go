package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Columnar time-series segment format. A segment is the compacted, read-
// optimized form of a sealed WAL span: per base series one block holding
// the series' timestamps (delta-of-delta varints) and values (XOR bit
// stream), each block CRC-framed, with a footer index mapping series keys
// to block offsets so a reader can fetch one series without scanning. The
// layout is append-only — blocks are written once and never rewritten:
//
//	header   magic "F2SEG001", fingerprint, fromGen, toGen, series count, CRC
//	blocks   ×N: u32 len ‖ u32 CRC ‖ key ‖ count ‖ timestamps ‖ values
//	index    u32 len ‖ u32 CRC ‖ (key, offset, count)×N
//	trailer  u64 index offset ‖ magic "F2SEGEND"
//
// The trailer is fixed-size at the file end, so opening a segment is: seek
// to the trailer, check the magic, jump to the index, verify its CRC, then
// read blocks on demand. Every length and offset is bounds-checked and the
// decoder never allocates more than the input could possibly describe —
// FuzzDecodeSegment holds it to that.

var (
	segMagic     = [8]byte{'F', '2', 'S', 'E', 'G', '0', '0', '1'}
	segEndMagic  = [8]byte{'F', '2', 'S', 'E', 'G', 'E', 'N', 'D'}
	segHeaderLen = 8 + 8 + 8 + 8 + 4 + 4 // magic, fingerprint, fromGen, toGen, count, CRC
	segTrailerLen = 8 + 8                // index offset, end magic
)

// Header identifies a segment: the cube fingerprint it belongs to and the
// half-open generation span [FromGen, ToGen) its columns cover.
type Header struct {
	Fingerprint uint64
	FromGen     uint64
	ToGen       uint64
}

// Series is one column pair: a series key (the node's canonical coordinate
// key) with its timestamps and values over the segment span. For F²DB
// compactions Times are the consecutive batch generations, which the
// delta-of-delta encoding stores in one byte per point.
type Series struct {
	Key    string
	Times  []int64
	Values []float64
}

// maxSegmentSeries bounds the series count a header may claim, against
// corrupt counts driving allocation.
const maxSegmentSeries = 16 << 20

// EncodeSegment renders a complete segment image. Series are written in
// the order given; the index preserves it.
func EncodeSegment(hdr Header, series []Series) ([]byte, error) {
	if len(series) > maxSegmentSeries {
		return nil, fmt.Errorf("segment: %d series exceeds the format bound", len(series))
	}
	buf := make([]byte, 0, 1024)
	buf = append(buf, segMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.FromGen)
	buf = binary.LittleEndian.AppendUint64(buf, hdr.ToGen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(series)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	type indexEntry struct {
		key    string
		offset uint64
		count  uint64
	}
	index := make([]indexEntry, 0, len(series))
	var scratch []byte
	for _, s := range series {
		if len(s.Times) != len(s.Values) {
			return nil, fmt.Errorf("segment: series %q has %d timestamps but %d values", s.Key, len(s.Times), len(s.Values))
		}
		index = append(index, indexEntry{key: s.Key, offset: uint64(len(buf)), count: uint64(len(s.Times))})
		scratch = scratch[:0]
		scratch = appendUvarint(scratch, uint64(len(s.Key)))
		scratch = append(scratch, s.Key...)
		scratch = appendUvarint(scratch, uint64(len(s.Times)))
		ts := appendTimesDoD(nil, s.Times)
		scratch = appendUvarint(scratch, uint64(len(ts)))
		scratch = append(scratch, ts...)
		scratch = appendValuesXOR(scratch, s.Values)
		buf = appendBlock(buf, scratch)
	}

	indexOff := uint64(len(buf))
	scratch = scratch[:0]
	scratch = appendUvarint(scratch, uint64(len(index)))
	for _, e := range index {
		scratch = appendUvarint(scratch, uint64(len(e.key)))
		scratch = append(scratch, e.key...)
		scratch = appendUvarint(scratch, e.offset)
		scratch = appendUvarint(scratch, e.count)
	}
	buf = appendBlock(buf, scratch)
	buf = binary.LittleEndian.AppendUint64(buf, indexOff)
	buf = append(buf, segEndMagic[:]...)
	return buf, nil
}

// appendBlock frames a payload as u32 length ‖ u32 CRC-32C ‖ payload.
func appendBlock(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readBlock validates and returns the framed payload at off.
func readBlock(data []byte, off uint64) ([]byte, error) {
	if off > uint64(len(data)) || uint64(len(data))-off < 8 {
		return nil, fmt.Errorf("segment: block offset %d out of range", off)
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if uint64(n) > uint64(len(data))-off-8 {
		return nil, fmt.Errorf("segment: block at %d claims %d bytes, %d remain", off, n, uint64(len(data))-off-8)
	}
	payload := data[off+8 : off+8+uint64(n)]
	if crc := crc32.Checksum(payload, crcTable); crc != want {
		return nil, fmt.Errorf("segment: block at %d: CRC mismatch (stored %08x, computed %08x)", off, want, crc)
	}
	return payload, nil
}

// DecodeSegment validates a segment image and decodes every series, in
// index order. Corrupt input of any shape returns an error; it never
// panics and never allocates more than the input can describe.
func DecodeSegment(data []byte) (Header, []Series, error) {
	var hdr Header
	if len(data) < segHeaderLen+segTrailerLen {
		return hdr, nil, fmt.Errorf("segment: %d bytes is shorter than header+trailer", len(data))
	}
	if string(data[:8]) != string(segMagic[:]) {
		return hdr, nil, fmt.Errorf("segment: bad magic")
	}
	if crc := crc32.Checksum(data[:segHeaderLen-4], crcTable); crc != binary.LittleEndian.Uint32(data[segHeaderLen-4:segHeaderLen]) {
		return hdr, nil, fmt.Errorf("segment: header CRC mismatch")
	}
	hdr.Fingerprint = binary.LittleEndian.Uint64(data[8:16])
	hdr.FromGen = binary.LittleEndian.Uint64(data[16:24])
	hdr.ToGen = binary.LittleEndian.Uint64(data[24:32])
	count := binary.LittleEndian.Uint32(data[32:36])
	if count > maxSegmentSeries {
		return hdr, nil, fmt.Errorf("segment: header claims %d series", count)
	}

	trailer := data[len(data)-segTrailerLen:]
	if string(trailer[8:]) != string(segEndMagic[:]) {
		return hdr, nil, fmt.Errorf("segment: bad end magic")
	}
	indexOff := binary.LittleEndian.Uint64(trailer[:8])
	indexPayload, err := readBlock(data[:len(data)-segTrailerLen], indexOff)
	if err != nil {
		return hdr, nil, fmt.Errorf("segment: index: %w", err)
	}

	d := &decoder{data: indexPayload}
	n, err := d.uvarint()
	if err != nil {
		return hdr, nil, err
	}
	if n != uint64(count) {
		return hdr, nil, fmt.Errorf("segment: header claims %d series, index %d", count, n)
	}
	// Each index entry costs at least 3 bytes (empty key, offset, count).
	if n > uint64(len(indexPayload)) {
		return hdr, nil, fmt.Errorf("segment: index claims %d entries in %d bytes", n, len(indexPayload))
	}
	out := make([]Series, 0, min(int(n), 4096))
	for i := uint64(0); i < n; i++ {
		keyLen, err := d.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		key, err := d.bytes(int(keyLen))
		if err != nil {
			return hdr, nil, err
		}
		off, err := d.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		cnt, err := d.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		s, err := decodeSeriesBlock(data[:len(data)-segTrailerLen], off)
		if err != nil {
			return hdr, nil, fmt.Errorf("segment: series %q: %w", key, err)
		}
		if s.Key != string(key) || uint64(len(s.Times)) != cnt {
			return hdr, nil, fmt.Errorf("segment: index entry %q/%d disagrees with block %q/%d", key, cnt, s.Key, len(s.Times))
		}
		out = append(out, s)
	}
	return hdr, out, nil
}

// decodeSeriesBlock validates and decodes the series block at off.
func decodeSeriesBlock(data []byte, off uint64) (Series, error) {
	var s Series
	payload, err := readBlock(data, off)
	if err != nil {
		return s, err
	}
	d := &decoder{data: payload}
	keyLen, err := d.uvarint()
	if err != nil {
		return s, err
	}
	key, err := d.bytes(int(keyLen))
	if err != nil {
		return s, err
	}
	s.Key = string(key)
	cnt, err := d.uvarint()
	if err != nil {
		return s, err
	}
	tsLen, err := d.uvarint()
	if err != nil {
		return s, err
	}
	tsBytes, err := d.bytes(int(tsLen))
	if err != nil {
		return s, err
	}
	td := &decoder{data: tsBytes}
	s.Times, err = decodeTimesDoD(td, int(cnt))
	if err != nil {
		return s, err
	}
	if td.off != len(tsBytes) {
		return s, fmt.Errorf("segment: %d stray bytes after timestamps", len(tsBytes)-td.off)
	}
	s.Values, err = decodeValuesXOR(payload[d.off:], int(cnt))
	if err != nil {
		return s, err
	}
	return s, nil
}
