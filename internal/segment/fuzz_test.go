package segment

import (
	"math"
	"testing"
)

// FuzzDecodeSegment feeds arbitrary bytes to the segment decoder. Two
// properties: robustness — corrupt input of any shape returns an error, never
// a panic, and never an allocation larger than the input could describe — and
// canonical round-trip: an image the decoder accepts re-encodes and re-decodes
// to the identical header and columns. Seeds start the fuzzer at a valid image
// plus truncated and bit-flipped corruptions of it; the checked-in corpus
// under testdata/fuzz/FuzzDecodeSegment pins format corners (bare magics,
// empty input).
func FuzzDecodeSegment(f *testing.F) {
	_, _, img := testSegment(f)
	f.Add(append([]byte(nil), img...))
	for _, cut := range []int{0, 8, segHeaderLen, len(img) / 2, len(img) - segTrailerLen, len(img) - 1} {
		f.Add(append([]byte(nil), img[:cut]...))
	}
	for _, pos := range []int{4, 20, len(img) / 2, len(img) - 4} {
		flipped := append([]byte(nil), img...)
		flipped[pos] ^= 0xFF
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound decode cost; valid test images are well under 1 KiB
		}
		hdr, series, err := DecodeSegment(data) // must not panic
		if err != nil {
			return
		}
		// Over-allocation guard: every decoded point costs at least one bit
		// of input (first value of a column costs 64), so the total can
		// never exceed eight points per input byte.
		points := 0
		for _, s := range series {
			points += len(s.Times)
		}
		if points > 8*len(data) {
			t.Fatalf("%d decoded points from %d input bytes", points, len(data))
		}
		img2, err := EncodeSegment(hdr, series)
		if err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
		hdr2, series2, err := DecodeSegment(img2)
		if err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
		if hdr2 != hdr || len(series2) != len(series) {
			t.Fatalf("round trip changed the segment: %+v/%d -> %+v/%d", hdr, len(series), hdr2, len(series2))
		}
		for i := range series {
			a, b := series[i], series2[i]
			if a.Key != b.Key || len(a.Times) != len(b.Times) {
				t.Fatalf("series %d changed shape in round trip", i)
			}
			for j := range a.Times {
				if a.Times[j] != b.Times[j] || math.Float64bits(a.Values[j]) != math.Float64bits(b.Values[j]) {
					t.Fatalf("series %d point %d changed in round trip", i, j)
				}
			}
		}
	})
}

// fuzzWALImage builds a realistic WAL file image (header + batches, with the
// fuzz fingerprint) for seeding FuzzReplayWAL.
func fuzzWALImage(f *testing.F, sealed bool) []byte {
	f.Helper()
	fs := NewMemFS()
	if err := fs.MkdirAll("w"); err != nil {
		f.Fatal(err)
	}
	w, _, err := OpenWAL(fs, "w", testFP, SyncAlways, nil)
	if err != nil {
		f.Fatal(err)
	}
	for gen := uint64(10); gen < 13; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			f.Fatal(err)
		}
	}
	if sealed {
		if err := w.Rotate(13); err != nil {
			f.Fatal(err)
		}
	}
	data, err := fs.ReadFile("w/wal-00000001.log")
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReplayWAL plants arbitrary bytes as the only WAL file and opens the
// log. Properties: OpenWAL never panics and never over-allocates; whatever it
// accepts leaves a usable log — the batches replay with contiguous
// generations, and an appended follow-up batch survives a second open. Seeds
// are a valid single-file log plus truncations and bit flips of it; the
// corpus under testdata/fuzz/FuzzReplayWAL pins the framing corners.
func FuzzReplayWAL(f *testing.F) {
	img := fuzzWALImage(f, false)
	f.Add(append([]byte(nil), img...))
	f.Add(fuzzWALImage(f, true))
	for _, cut := range []int{0, 5, 41, len(img) / 2, len(img) - 1} {
		f.Add(append([]byte(nil), img[:cut]...))
	}
	for _, pos := range []int{0, 12, 45, len(img) / 2} {
		flipped := append([]byte(nil), img...)
		flipped[pos] ^= 0xFF
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		fs := NewMemFS()
		if err := fs.MkdirAll("w"); err != nil {
			t.Fatal(err)
		}
		fl, err := fs.Create("w/wal-00000001.log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fl.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := fl.Sync(); err != nil {
			t.Fatal(err)
		}
		fl.Close()
		if err := fs.SyncDir("w"); err != nil {
			t.Fatal(err)
		}

		var gens []uint64
		entryCount := 0
		w, info, err := OpenWAL(fs, "w", testFP, SyncAlways, func(gen uint64, entries []Entry) error {
			gens = append(gens, gen)
			entryCount += len(entries)
			return nil
		})
		if err != nil {
			return // rejected: corruption is an error, never a panic
		}
		// Each replayed entry costs at least 9 bytes of input.
		if entryCount > len(data)/9+1 {
			t.Fatalf("%d replayed entries from %d input bytes", entryCount, len(data))
		}
		for i := 1; i < len(gens); i++ {
			if gens[i] != gens[i-1]+1 {
				t.Fatalf("replayed generations not contiguous: %v", gens)
			}
		}
		// The accepted log must be appendable, and the appended batch must
		// survive a reopen along with everything replayed before it.
		next := uint64(1)
		if len(gens) > 0 {
			next = gens[len(gens)-1] + 1
		}
		if err := w.Append(next, testBatch(next)); err != nil {
			t.Fatalf("accepted log refused an append: %v", err)
		}
		_, info2, err := OpenWAL(fs, "w", testFP, SyncAlways, nil)
		if err != nil {
			t.Fatalf("log unreadable after append: %v", err)
		}
		if info2.Batches != info.Batches+1 || info2.TornBytes != 0 {
			t.Fatalf("reopen after append: %+v following %+v", info2, info)
		}
	})
}
