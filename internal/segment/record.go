package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL record framing. Every record is
//
//	u32 LE  payload length
//	u32 LE  CRC-32C over (type byte ‖ payload)
//	u8      record type
//	bytes   payload
//
// The CRC covers the type so a flipped type byte is caught, and the length
// sits outside the CRC so a torn header is detected by the frame not
// parsing rather than by a misleading checksum. Readers treat a frame that
// does not fully fit in the remaining bytes as a torn tail (clean end of
// log when reading the active file) and a frame whose CRC mismatches as
// corruption; which of the two is tolerable is the caller's decision
// (wal.go: only the final, unsealed file may end torn).

const (
	recHeader byte = 1 // file header: magic, fingerprint, start generation
	recBatch  byte = 2 // one committed insert batch
	recSeal   byte = 3 // clean end of a rotated file; nothing follows
)

// maxRecordSize bounds a single record's payload so a corrupt length field
// cannot drive allocation. 64 MiB holds a batch of ~4M base series.
const maxRecordSize = 64 << 20

// recordHeaderSize is the fixed frame prefix: length, CRC, type.
const recordHeaderSize = 4 + 4 + 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one framed record to buf and returns the extended
// slice.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, []byte{typ})
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// errTorn marks a frame cut short by the end of the data — the shape a
// crashed append leaves behind. Callers reading the active WAL file treat
// it as the clean end of the log.
type tornError struct{ off int64 }

func (e *tornError) Error() string {
	return fmt.Sprintf("segment: torn record at offset %d", e.off)
}

// readRecord parses the record starting at off. It returns the record type,
// its payload (aliasing data), and the offset of the next record. A frame
// extending past the data yields a *tornError; a CRC or bounds violation
// yields a hard corruption error.
func readRecord(data []byte, off int64) (typ byte, payload []byte, next int64, err error) {
	if off < 0 || off > int64(len(data)) {
		return 0, nil, 0, fmt.Errorf("segment: record offset %d out of range", off)
	}
	rest := data[off:]
	if len(rest) < recordHeaderSize {
		return 0, nil, 0, &tornError{off: off}
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	if n > maxRecordSize {
		return 0, nil, 0, fmt.Errorf("segment: record at offset %d claims %d payload bytes (max %d)", off, n, maxRecordSize)
	}
	if int64(len(rest)) < recordHeaderSize+int64(n) {
		return 0, nil, 0, &tornError{off: off}
	}
	wantCRC := binary.LittleEndian.Uint32(rest[4:8])
	typ = rest[8]
	payload = rest[recordHeaderSize : recordHeaderSize+int64(n)]
	crc := crc32.Update(0, crcTable, rest[8:9])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != wantCRC {
		return 0, nil, 0, fmt.Errorf("segment: record at offset %d: CRC mismatch (stored %08x, computed %08x)", off, wantCRC, crc)
	}
	return typ, payload, off + recordHeaderSize + int64(n), nil
}

// RecordBoundaries scans a WAL file image and returns the byte offset after
// every whole, CRC-valid record, in order. Scanning stops at the first torn
// or corrupt frame. The crash harness uses it to enumerate exactly the kill
// points the recovery suite must survive.
func RecordBoundaries(data []byte) []int64 {
	var bounds []int64
	off := int64(0)
	for off < int64(len(data)) {
		_, _, next, err := readRecord(data, off)
		if err != nil {
			break
		}
		bounds = append(bounds, next)
		off = next
	}
	return bounds
}
