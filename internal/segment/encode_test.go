package segment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripTimes(t *testing.T, times []int64) {
	t.Helper()
	enc := appendTimesDoD(nil, times)
	d := &decoder{data: enc}
	got, err := decodeTimesDoD(d, len(times))
	if err != nil {
		t.Fatalf("times %v: %v", times, err)
	}
	if d.off != len(enc) {
		t.Fatalf("times %v: %d stray bytes", times, len(enc)-d.off)
	}
	if len(got) != len(times) {
		t.Fatalf("times %v: decoded %d points", times, len(got))
	}
	for i := range times {
		if got[i] != times[i] {
			t.Fatalf("times %v: point %d decoded as %d", times, i, got[i])
		}
	}
}

func TestTimesDoDRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{-7},
		{0, 1},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{100, 90, 95, 95, 200, -50},
		{math.MaxInt32, math.MaxInt32 + 1, math.MaxInt32 + 2},
		{-1000, 0, 1000, 1},
	}
	for _, c := range cases {
		roundTripTimes(t, c)
	}
}

// TestTimesDoDRegularIsOneBytePerPoint pins the property compaction relies
// on: consecutive batch generations (delta always 1) cost one byte per point
// after the first two varints.
func TestTimesDoDRegularIsOneBytePerPoint(t *testing.T) {
	times := make([]int64, 100)
	for i := range times {
		times[i] = 36 + int64(i)
	}
	enc := appendTimesDoD(nil, times)
	first := len(appendVarint(nil, times[0])) + len(appendVarint(nil, 1))
	if want := first + len(times) - 2; len(enc) != want {
		t.Fatalf("regular series encoded to %d bytes, want %d", len(enc), want)
	}
}

func roundTripValues(t *testing.T, values []float64) {
	t.Helper()
	enc := appendValuesXOR(nil, values)
	got, err := decodeValuesXOR(enc, len(values))
	if err != nil {
		t.Fatalf("values %v: %v", values, err)
	}
	if len(got) != len(values) {
		t.Fatalf("values %v: decoded %d points", values, len(got))
	}
	for i := range values {
		if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
			t.Fatalf("values: point %d decoded as %x, want %x (%v vs %v)",
				i, math.Float64bits(got[i]), math.Float64bits(values[i]), got[i], values[i])
		}
	}
}

func TestValuesXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	walk := make([]float64, 64)
	v := 100.0
	for i := range walk {
		v += rng.NormFloat64()
		walk[i] = v
	}
	cases := [][]float64{
		nil,
		{0},
		{3.25},
		{1, 1, 1, 1, 1},
		{0, math.Copysign(0, -1), 0},
		{math.NaN(), math.Inf(1), math.Inf(-1), -math.MaxFloat64, math.SmallestNonzeroFloat64},
		{1, 2, 4, 8, 16, 32},
		walk,
	}
	for _, c := range cases {
		roundTripValues(t, c)
	}
}

// TestValuesXORQuickProperty holds the XOR codec to bit-exact round-trips on
// arbitrary float columns, including the NaN payloads and subnormals quick
// likes to generate.
func TestValuesXORQuickProperty(t *testing.T) {
	prop := func(values []float64) bool {
		enc := appendValuesXOR(nil, values)
		got, err := decodeValuesXOR(enc, len(values))
		if err != nil || len(got) != len(values) {
			return false
		}
		for i := range values {
			if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesXORDecodeBounds(t *testing.T) {
	enc := appendValuesXOR(nil, []float64{1, 2, 3, 4})
	// A count the stream cannot hold is rejected up front.
	if _, err := decodeValuesXOR(enc, len(enc)*8+2); err == nil {
		t.Fatal("oversized count accepted")
	}
	if _, err := decodeValuesXOR(enc[:4], 1); err == nil {
		t.Fatal("truncated first value accepted")
	}
	// Every truncation of the stream must error, not fabricate values.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeValuesXOR(enc[:cut], 4); err == nil {
			t.Fatalf("truncation to %d bytes decoded 4 values", cut)
		}
	}
}

func TestTimesDoDDecodeBounds(t *testing.T) {
	enc := appendTimesDoD(nil, []int64{10, 20, 30, 40})
	for cut := 0; cut < len(enc); cut++ {
		d := &decoder{data: enc[:cut]}
		if _, err := decodeTimesDoD(d, 4); err == nil {
			t.Fatalf("truncation to %d bytes decoded 4 timestamps", cut)
		}
	}
	d := &decoder{data: []byte{0}}
	if _, err := decodeTimesDoD(d, 1<<30); err == nil {
		t.Fatal("oversized count accepted")
	}
}
