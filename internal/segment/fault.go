package segment

import "io"

// FaultWriter wraps an io.Writer with byte-exact write faults, the unit-
// level sibling of MemFS's filesystem faults: where MemFS models what a
// crash preserves, FaultWriter models what a failing device does to the
// byte stream itself. The recovery tests drive the WAL and segment writers
// through it to produce torn records, short writes and flipped bits at
// chosen offsets.
type FaultWriter struct {
	W io.Writer
	// Mode selects the fault; N is the byte offset (in the stream written
	// through this wrapper) at which it fires.
	Mode FaultMode
	N    int64

	written int64
	dead    bool
	fired   bool
}

// FaultMode enumerates the injected behaviors.
type FaultMode int

const (
	// FaultNone passes writes through unchanged.
	FaultNone FaultMode = iota
	// FaultKillAt stops the stream at offset N: the write reaching N
	// persists its prefix and fails, and every later write fails without
	// persisting anything — a process killed mid-append.
	FaultKillAt
	// FaultTorn persists the prefix up to N of the single write that
	// crosses it and fails that write; later writes pass through — a
	// sector-torn append the device completed around.
	FaultTorn
	// FaultShort persists the prefix up to N of the crossing write and
	// returns the short count without an error, exercising callers that
	// fail to check n < len(p).
	FaultShort
	// FaultFlipBit flips the lowest bit of the byte at stream offset N and
	// otherwise passes everything through — silent corruption.
	FaultFlipBit
)

// Write implements io.Writer with the armed fault.
func (f *FaultWriter) Write(p []byte) (int, error) {
	start := f.written
	switch f.Mode {
	case FaultKillAt:
		if f.dead {
			return 0, ErrInjected
		}
		if start+int64(len(p)) > f.N {
			keep := f.N - start
			if keep < 0 {
				keep = 0
			}
			n, _ := f.W.Write(p[:keep])
			f.written += int64(n)
			f.dead = true
			return n, ErrInjected
		}
	case FaultTorn, FaultShort:
		// Only the single write crossing N is cut; the cut stops the stream
		// at N, so without the fired latch every later write would cross N
		// again and the "device recovered" semantics would never happen.
		if !f.fired && start <= f.N && start+int64(len(p)) > f.N {
			f.fired = true
			keep := f.N - start
			n, _ := f.W.Write(p[:keep])
			f.written += int64(n)
			if f.Mode == FaultShort {
				return n, nil
			}
			return n, ErrInjected
		}
	case FaultFlipBit:
		if start <= f.N && start+int64(len(p)) > f.N {
			q := append([]byte(nil), p...)
			q[f.N-start] ^= 1
			n, err := f.W.Write(q)
			f.written += int64(n)
			return n, err
		}
	}
	n, err := f.W.Write(p)
	f.written += int64(n)
	return n, err
}
