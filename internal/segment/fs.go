// Package segment is F²DB's durability layer: an incremental write-ahead
// log of committed insert batches (wal.go, record.go) and an append-only
// columnar time-series segment format sealed WAL spans compact into
// (segment.go, encode.go). Both are defined over a small filesystem
// interface (this file) so the crash-recovery test harness can run the
// real code paths against an in-memory filesystem that models exactly
// what survives a power loss — written-but-unsynced data does not
// (memfs.go, fault.go).
//
// Durability contract: a WAL record is durable once Append returned under
// SyncAlways (the fsync happened before the engine applied the batch);
// a segment or snapshot file is durable once WriteFileSync returned (data
// fsync, then rename, then parent-directory fsync). Everything else —
// unsynced appends, renames whose directory was not synced — is legally
// lost on a crash, and the recovery path treats its absence as normal.
package segment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the write side of a log or segment file. Writes append at the
// end; Sync makes everything written so far survive a crash.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layer needs. OSFS backs
// production; MemFS backs the crash harness. Paths use forward slashes on
// both.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when missing.
	Append(name string) (File, error)
	// ReadFile returns the full current contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) directly under dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname's file. Durable only
	// after SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name down to size bytes (the torn-tail repair at WAL
	// reopen).
	Truncate(name string, size int64) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making entry creations, renames
	// and removals durable.
	SyncDir(dir string) error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS. On platforms where directories cannot be fsynced
// (some filesystems return EINVAL) the error is swallowed: the rename was
// still issued and nothing stronger is available.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// WriteFileSync durably replaces dir/name with data: write to a temporary
// file in the same directory, fsync it, close, rename over name, fsync the
// directory. A crash at any point leaves either the old file or the new one
// — never a partial write, and never a rename that vanishes because the
// directory entry was still in the page cache (the bug this helper exists
// to fix: tmp+rename without either fsync can lose a "saved" snapshot on
// power loss).
func WriteFileSync(fs FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	final := filepath.Join(dir, name)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("segment: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("segment: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}
