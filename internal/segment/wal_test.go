package segment

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const testFP = 0x1122334455667788

type replayedBatch struct {
	gen     uint64
	entries []Entry
}

// openCollect opens the WAL and collects every replayed batch.
func openCollect(t *testing.T, fs FS, dir string, fp uint64, policy SyncPolicy) (*WAL, ReplayInfo, []replayedBatch) {
	t.Helper()
	var got []replayedBatch
	w, info, err := OpenWAL(fs, dir, fp, policy, func(gen uint64, entries []Entry) error {
		got = append(got, replayedBatch{gen: gen, entries: append([]Entry(nil), entries...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, info, got
}

func newWALFS(t *testing.T) *MemFS {
	t.Helper()
	fs := NewMemFS()
	if err := fs.MkdirAll("w"); err != nil {
		t.Fatal(err)
	}
	return fs
}

func testBatch(gen uint64) []Entry {
	return []Entry{
		{ID: 1, Value: float64(gen) + 0.25},
		{ID: 4, Value: -float64(gen)},
		{ID: 9, Value: math.Pi * float64(gen)},
	}
}

func TestWALAppendReplay(t *testing.T) {
	fs := newWALFS(t)
	w, info, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	if info.Files != 0 || info.Batches != 0 {
		t.Fatalf("fresh log reports %+v", info)
	}
	for gen := uint64(10); gen < 13; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			t.Fatal(err)
		}
	}
	appends, syncs, bytes, files := w.Stats()
	if appends != 3 || syncs != 3 || files != 1 || bytes == 0 {
		t.Fatalf("stats appends=%d syncs=%d bytes=%d files=%d", appends, syncs, bytes, files)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(13, testBatch(13)); err == nil {
		t.Fatal("append after Close succeeded")
	}

	_, info, got := openCollect(t, fs, "w", testFP, SyncAlways)
	if info.Files != 1 || info.Batches != 3 || info.TornBytes != 0 {
		t.Fatalf("reopen reports %+v", info)
	}
	for i, rb := range got {
		wantGen := uint64(10 + i)
		if rb.gen != wantGen {
			t.Fatalf("batch %d replayed gen %d, want %d", i, rb.gen, wantGen)
		}
		want := testBatch(wantGen)
		if len(rb.entries) != len(want) {
			t.Fatalf("batch %d has %d entries", i, len(rb.entries))
		}
		for j := range want {
			if rb.entries[j].ID != want[j].ID || math.Float64bits(rb.entries[j].Value) != math.Float64bits(want[j].Value) {
				t.Fatalf("batch %d entry %d: %+v, want %+v", i, j, rb.entries[j], want[j])
			}
		}
	}
}

func TestWALAppendRejectsUnsortedEntries(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	err := w.Append(1, []Entry{{ID: 4}, {ID: 2}})
	if err == nil {
		t.Fatal("unsorted batch accepted")
	}
	// The rejection happens before any byte is written, so it must not
	// poison the log.
	if err := w.Append(1, testBatch(1)); err != nil {
		t.Fatalf("append after rejected batch: %v", err)
	}
}

func TestWALRotateAndRemoveBelow(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	for gen := uint64(10); gen < 13; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(13); err != nil {
		t.Fatal(err)
	}
	for gen := uint64(13); gen < 15; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			t.Fatal(err)
		}
	}
	if first, ok := w.EarliestStartGen(); !ok || first != 10 {
		t.Fatalf("EarliestStartGen %d/%v, want 10", first, ok)
	}
	if err := w.RemoveBelow(13); err != nil {
		t.Fatal(err)
	}
	if first, ok := w.EarliestStartGen(); !ok || first != 13 {
		t.Fatalf("EarliestStartGen after prune %d/%v, want 13", first, ok)
	}
	// A crash after RemoveBelow must not resurrect the pruned file: the
	// removal was committed with a directory sync.
	fs.Crash()
	_, info, got := openCollect(t, fs, "w", testFP, SyncAlways)
	if info.Files != 1 || info.Batches != 2 {
		t.Fatalf("after prune+crash: %+v", info)
	}
	if got[0].gen != 13 || got[1].gen != 14 {
		t.Fatalf("after prune+crash replayed gens %d,%d", got[0].gen, got[1].gen)
	}
}

func TestWALTornTailTruncatedOnReopen(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	for gen := uint64(5); gen < 8; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			t.Fatal(err)
		}
	}
	whole := fs.DurableLen("w/wal-00000001.log")
	// Cut the next record a few bytes in: the write fails, the log poisons.
	fs.SetWriteLimit(5)
	if err := w.Append(8, testBatch(8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append under fault: %v", err)
	}
	if err := w.Append(9, testBatch(9)); err == nil || !strings.Contains(err.Error(), "permanently") {
		t.Fatalf("poisoned WAL accepted an append: %v", err)
	}
	if err := w.Rotate(9); err == nil {
		t.Fatal("poisoned WAL accepted a rotate")
	}
	fs.SetWriteLimit(-1)

	// Reopen without a crash (process kill): the torn 5 bytes are discarded,
	// the three whole batches replay, and the log accepts appends again.
	w2, info, got := openCollect(t, fs, "w", testFP, SyncAlways)
	if info.TornBytes != 5 || info.Batches != 3 {
		t.Fatalf("reopen after torn append: %+v", info)
	}
	if got[len(got)-1].gen != 7 {
		t.Fatalf("last replayed gen %d, want 7", got[len(got)-1].gen)
	}
	if fs.DurableLen("w/wal-00000001.log") > whole {
		// reopenTruncated syncs the truncation before anything is appended.
		t.Fatal("torn tail still durable after reopen")
	}
	if err := w2.Append(8, testBatch(8)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	_, info, got = openCollect(t, fs, "w", testFP, SyncAlways)
	if info.Batches != 4 || info.TornBytes != 0 || got[3].gen != 8 {
		t.Fatalf("second reopen: %+v, last gen %d", info, got[len(got)-1].gen)
	}
}

func TestWALTornHeaderFileRemoved(t *testing.T) {
	fs := newWALFS(t)
	f, err := fs.Create("w/wal-00000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w, info, got := openCollect(t, fs, "w", testFP, SyncAlways)
	if info.TornBytes != 5 || len(got) != 0 {
		t.Fatalf("torn-header open: %+v, %d batches", info, len(got))
	}
	names, err := fs.ReadDir("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("torn-header file survived: %v", names)
	}
	// The dead sequence number is not reused.
	if err := w.Append(1, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	names, _ = fs.ReadDir("w")
	if len(names) != 1 || names[0] != "wal-00000002.log" {
		t.Fatalf("next file after torn header: %v", names)
	}
}

func TestWALCorruptSealedFileFailsHard(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	if err := w.Append(3, testBatch(3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(4); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(4, testBatch(4)); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the sealed file's batch record (past the 41-byte
	// header record): sealed damage is corruption, not a tolerable torn tail.
	if err := fs.FlipBit("w/wal-00000001.log", 50, 0); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenWAL(fs, "w", testFP, SyncAlways, nil)
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("corrupt sealed file: %v", err)
	}
}

func TestWALUnsealedNonFinalFileFailsHard(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	if err := w.Append(3, testBatch(3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a later file: the first file is now unsealed AND not final,
	// which recovery must refuse — its end cannot be attributed to a crash.
	f, err := fs.Create("w/wal-00000002.log")
	if err != nil {
		t.Fatal(err)
	}
	hdr := appendRecord(nil, recHeader, encodeWALHeader(testFP, 4, 2))
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, _, err = OpenWAL(fs, "w", testFP, SyncAlways, nil)
	if !errors.Is(err, ErrWALCorrupt) || !strings.Contains(err.Error(), "not the final one") {
		t.Fatalf("unsealed non-final file: %v", err)
	}
}

func TestWALGenerationGapFailsHard(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	if err := w.Append(5, testBatch(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(7, testBatch(7)); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenWAL(fs, "w", testFP, SyncAlways, nil)
	if !errors.Is(err, ErrWALCorrupt) || !strings.Contains(err.Error(), "generation gap") {
		t.Fatalf("generation gap: %v", err)
	}
}

func TestWALFingerprintMismatch(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncAlways)
	if err := w.Append(1, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenWAL(fs, "w", testFP+1, SyncAlways, nil)
	if !errors.Is(err, ErrWALCorrupt) || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign fingerprint: %v", err)
	}
}

func TestWALSyncPolicies(t *testing.T) {
	cases := []struct {
		policy    SyncPolicy
		appends   int
		wantSyncs int64
	}{
		{SyncAlways, 3, 3},
		{SyncNever, 3, 0},
		{SyncEvery(2), 4, 2},
		{SyncEvery(3), 7, 2},
	}
	for _, c := range cases {
		fs := newWALFS(t)
		w, _, _ := openCollect(t, fs, "w", testFP, c.policy)
		for i := 0; i < c.appends; i++ {
			if err := w.Append(uint64(i+1), testBatch(uint64(i+1))); err != nil {
				t.Fatal(err)
			}
		}
		_, syncs, _, _ := w.Stats()
		if syncs != c.wantSyncs {
			t.Fatalf("policy %v: %d syncs after %d appends, want %d", c.policy, syncs, c.appends, c.wantSyncs)
		}
	}
}

// TestWALSyncNeverLosesUnsyncedOnCrash pins the SyncNever contract: a power
// loss legally discards every record since the last sync — exactly the
// exposure the policy buys its speed with.
func TestWALSyncNeverLosesUnsyncedOnCrash(t *testing.T) {
	fs := newWALFS(t)
	w, _, _ := openCollect(t, fs, "w", testFP, SyncNever)
	for gen := uint64(1); gen <= 3; gen++ {
		if err := w.Append(gen, testBatch(gen)); err != nil {
			t.Fatal(err)
		}
	}
	fs.Crash()
	_, info, got := openCollect(t, fs, "w", testFP, SyncNever)
	// The file header was synced by startFile, so the file survives — but
	// none of the unsynced batch records do.
	if info.Files != 1 || len(got) != 0 {
		t.Fatalf("after crash under SyncNever: %+v, %d batches", info, len(got))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"never", SyncNever, true},
		{"NEVER", SyncNever, true},
		{"1", SyncEvery(1), true},
		{"64", SyncEvery(64), true},
		{"0", 0, false},
		{"-3", 0, false},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncNever, SyncEvery(8)} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("policy %v does not round-trip through String: %v, %v", p, back, err)
		}
	}
	if SyncEvery(0) != SyncAlways || SyncEvery(-2) != SyncAlways {
		t.Fatal("SyncEvery with n < 1 must fall back to SyncAlways")
	}
}
