package segment

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// testRecords frames a few records of varying payload sizes into one stream
// and returns the stream plus the offset after each record.
func testRecords() ([]byte, []int64) {
	payloads := [][]byte{
		nil,
		{0x42},
		bytes.Repeat([]byte{0xAB}, 300),
		[]byte("the quick brown fox"),
	}
	var buf []byte
	var bounds []int64
	for i, p := range payloads {
		buf = appendRecord(buf, byte(i+1), p)
		bounds = append(bounds, int64(len(buf)))
	}
	return buf, bounds
}

func TestRecordRoundTrip(t *testing.T) {
	data, bounds := testRecords()
	off := int64(0)
	for i, want := range bounds {
		typ, payload, next, err := readRecord(data, off)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("record %d: type %d, want %d", i, typ, i+1)
		}
		if next != want {
			t.Fatalf("record %d: next offset %d, want %d", i, next, want)
		}
		_ = payload
		off = next
	}
	if off != int64(len(data)) {
		t.Fatalf("scan ended at %d, want %d", off, len(data))
	}
	if got := RecordBoundaries(data); len(got) != len(bounds) {
		t.Fatalf("RecordBoundaries found %d records, want %d", len(got), len(bounds))
	} else {
		for i := range got {
			if got[i] != bounds[i] {
				t.Fatalf("boundary %d: %d, want %d", i, got[i], bounds[i])
			}
		}
	}
}

// TestRecordEveryTruncation cuts the stream at every byte: a cut at a record
// boundary scans cleanly to the cut, any other cut stops with *tornError —
// never a panic, never a phantom record.
func TestRecordEveryTruncation(t *testing.T) {
	data, bounds := testRecords()
	isBoundary := map[int64]bool{0: true}
	for _, b := range bounds {
		isBoundary[b] = true
	}
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		off := int64(0)
		var err error
		for off < int64(len(prefix)) {
			var next int64
			_, _, next, err = readRecord(prefix, off)
			if err != nil {
				break
			}
			off = next
		}
		if isBoundary[int64(cut)] {
			if err != nil {
				t.Fatalf("cut at boundary %d: unexpected error %v", cut, err)
			}
			continue
		}
		var torn *tornError
		if !errors.As(err, &torn) {
			t.Fatalf("cut at %d: want torn record, got %v", cut, err)
		}
		if last := RecordBoundaries(prefix); len(last) > 0 && last[len(last)-1] > int64(cut) {
			t.Fatalf("cut at %d: boundary %d past the cut", cut, last[len(last)-1])
		}
	}
}

// TestRecordEveryByteFlip flips every byte of the stream: every flip must be
// detected as an error somewhere in the scan (torn framing or CRC mismatch),
// because every byte is covered by either the length field, the CRC field,
// or the checksummed type+payload region.
func TestRecordEveryByteFlip(t *testing.T) {
	data, _ := testRecords()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		off := int64(0)
		var err error
		for off < int64(len(mut)) {
			var next int64
			_, _, next, err = readRecord(mut, off)
			if err != nil {
				break
			}
			off = next
		}
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestRecordSizeBound(t *testing.T) {
	// A header claiming an absurd payload must be rejected before any
	// allocation, not treated as a torn record to wait for.
	hdr := make([]byte, recordHeaderSize)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB length
	_, _, _, err := readRecord(hdr, 0)
	if err == nil {
		t.Fatal("oversized record accepted")
	}
	var torn *tornError
	if errors.As(err, &torn) {
		t.Fatalf("oversized record reported as torn: %v", err)
	}
	if !strings.Contains(err.Error(), "max") {
		t.Fatalf("error does not mention the bound: %v", err)
	}
}

func TestRecordBadOffset(t *testing.T) {
	data, _ := testRecords()
	for _, off := range []int64{-1, int64(len(data)) + 1} {
		if _, _, _, err := readRecord(data, off); err == nil {
			t.Fatalf("offset %d accepted", off)
		}
	}
}
