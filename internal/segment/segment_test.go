package segment

import (
	"math"
	"math/rand"
	"testing"
)

func testSegment(t testing.TB) (Header, []Series, []byte) {
	t.Helper()
	hdr := Header{Fingerprint: 0xDEADBEEFCAFE, FromGen: 36, ToGen: 44}
	rng := rand.New(rand.NewSource(3))
	times := make([]int64, 8)
	for i := range times {
		times[i] = 36 + int64(i)
	}
	var series []Series
	for _, key := range []string{"P1|C1", "P1|C2", "P2|C1", "P2|C2"} {
		vals := make([]float64, len(times))
		v := 50 + 50*rng.Float64()
		for i := range vals {
			v += rng.NormFloat64()
			vals[i] = v
		}
		series = append(series, Series{Key: key, Times: times, Values: vals})
	}
	img, err := EncodeSegment(hdr, series)
	if err != nil {
		t.Fatal(err)
	}
	return hdr, series, img
}

func TestSegmentRoundTrip(t *testing.T) {
	hdr, series, img := testSegment(t)
	got, out, err := DecodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr {
		t.Fatalf("header %+v, want %+v", got, hdr)
	}
	if len(out) != len(series) {
		t.Fatalf("%d series, want %d", len(out), len(series))
	}
	for i, s := range series {
		if out[i].Key != s.Key {
			t.Fatalf("series %d key %q, want %q", i, out[i].Key, s.Key)
		}
		for j := range s.Times {
			if out[i].Times[j] != s.Times[j] {
				t.Fatalf("series %q time %d: %d, want %d", s.Key, j, out[i].Times[j], s.Times[j])
			}
			if math.Float64bits(out[i].Values[j]) != math.Float64bits(s.Values[j]) {
				t.Fatalf("series %q value %d not bit-identical", s.Key, j)
			}
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	hdr := Header{Fingerprint: 7, FromGen: 1, ToGen: 2}
	img, err := EncodeSegment(hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, series, err := DecodeSegment(img)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr || len(series) != 0 {
		t.Fatalf("empty segment decoded as %+v, %d series", got, len(series))
	}
}

func TestSegmentEncodeRejectsMismatchedColumns(t *testing.T) {
	_, err := EncodeSegment(Header{}, []Series{{Key: "x", Times: []int64{1, 2}, Values: []float64{1}}})
	if err == nil {
		t.Fatal("mismatched column lengths accepted")
	}
}

// TestSegmentEveryByteFlip corrupts every single byte of a valid image: the
// decoder must reject each mutation (every byte is covered by the header
// CRC, a block CRC, a frame length, or the trailer), and never panic.
func TestSegmentEveryByteFlip(t *testing.T) {
	_, _, img := testSegment(t)
	for i := range img {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeSegment(mut); err == nil {
			t.Fatalf("flip at byte %d of %d went undetected", i, len(img))
		}
	}
}

// TestSegmentEveryPrefix truncates the image at every length: all of them
// must return a clean error.
func TestSegmentEveryPrefix(t *testing.T) {
	_, _, img := testSegment(t)
	for cut := 0; cut < len(img); cut++ {
		if _, _, err := DecodeSegment(img[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", cut, len(img))
		}
	}
}

func TestSegmentSeriesBound(t *testing.T) {
	if _, err := EncodeSegment(Header{}, make([]Series, maxSegmentSeries+1)); err == nil {
		t.Fatal("series count over the format bound accepted")
	}
}
