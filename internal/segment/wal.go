package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Write-ahead log over an FS directory. The WAL is a sequence of files
// wal-<seq>.log, each opened by a header record (magic, cube fingerprint,
// the generation the file starts at) and closed — when rotated — by a seal
// record. Only the final, unsealed file may end in a torn record (the
// signature of a crash mid-append); a torn or corrupt record in a sealed
// file is reported as corruption, because sealing synced the file before
// anything was allowed to reference it.
//
// Appends are group commits: the engine calls Append once per completed
// insert batch, before it applies the batch in memory, and the configured
// SyncPolicy decides whether the append fsyncs before returning. Any
// append or sync failure poisons the WAL permanently (writes after a
// partial record would corrupt the log), surfacing the error on every
// subsequent call — the engine refuses the batch and keeps its pending
// state intact, so a healthy WAL can retry it.

// SyncPolicy decides when Append fsyncs: 0 after every record (SyncAlways,
// full group-commit durability — the zero value, so an unset knob errs
// toward durability), negative never (SyncNever, the OS page cache
// decides), n >= 1 after every n-th record.
type SyncPolicy int

const (
	// SyncAlways fsyncs every appended record before Append returns.
	SyncAlways SyncPolicy = 0
	// SyncNever leaves flushing to the OS.
	SyncNever SyncPolicy = -1
)

// SyncEvery returns the policy fsyncing after every n-th append.
func SyncEvery(n int) SyncPolicy {
	if n < 1 {
		return SyncAlways
	}
	return SyncPolicy(n)
}

// ParseSyncPolicy parses a -fsync flag value: "always", "never", or a
// positive integer n meaning fsync every n appends.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf(`segment: bad fsync policy %q (want "always", "never" or a positive count)`, s)
	}
	return SyncEvery(n), nil
}

// String renders the policy in ParseSyncPolicy's vocabulary.
func (p SyncPolicy) String() string {
	switch {
	case p < 0:
		return "never"
	case p == SyncAlways:
		return "always"
	}
	return strconv.Itoa(int(p))
}

// Entry is one base-series value of a committed batch.
type Entry struct {
	ID    int64
	Value float64
}

// ReplayFunc receives each committed batch during recovery, in log order.
// Returning an error aborts the replay.
type ReplayFunc func(gen uint64, entries []Entry) error

// ReplayInfo reports what recovery found.
type ReplayInfo struct {
	// Batches is the number of batch records replayed.
	Batches int
	// TornBytes is the size of the discarded torn tail, 0 for a clean log.
	TornBytes int64
	// Files is the number of WAL files present.
	Files int
}

// walMagic opens every WAL file's header record.
var walMagic = [8]byte{'F', '2', 'W', 'A', 'L', '0', '0', '1'}

// ErrWALCorrupt wraps hard log corruption: damage in a sealed region that
// recovery cannot attribute to a torn final append.
var ErrWALCorrupt = errors.New("segment: WAL corrupt")

type walFile struct {
	seq      uint64
	startGen uint64
	sealed   bool
}

// WAL is an open write-ahead log positioned for appending.
type WAL struct {
	mu          sync.Mutex
	fs          FS
	dir         string
	fingerprint uint64
	policy      SyncPolicy

	f         File   // nil until the first append creates/reopens a file
	active    string // name of the file f writes to
	files     []walFile
	nextSeq   uint64
	sinceSync int
	failed    error
	buf       []byte // framed-record scratch
	payload   []byte // batch-payload scratch

	appends, syncs, appendedBytes int64
}

func walFileName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

func parseWALSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	return seq, err == nil
}

// OpenWAL replays the log under dir (generation-checked, CRC-framed) into
// fn and returns a WAL positioned to append after the last durable record.
// A torn tail on the final file is truncated away; corruption anywhere
// else returns an error wrapping ErrWALCorrupt. The fingerprint ties the
// log to one cube: a mismatching header refuses to replay rather than
// feeding another database's batches into the engine.
func OpenWAL(fs FS, dir string, fingerprint uint64, policy SyncPolicy, fn ReplayFunc) (*WAL, ReplayInfo, error) {
	w := &WAL{fs: fs, dir: dir, fingerprint: fingerprint, policy: policy, nextSeq: 1}
	var info ReplayInfo

	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, info, err
	}
	for _, name := range names {
		if seq, ok := parseWALSeq(name); ok {
			w.files = append(w.files, walFile{seq: seq})
		}
	}
	sort.Slice(w.files, func(i, j int) bool { return w.files[i].seq < w.files[j].seq })
	info.Files = len(w.files)

	var lastGen uint64
	haveGen := false
	for i := range w.files {
		wf := &w.files[i]
		last := i == len(w.files)-1
		name := path.Join(dir, walFileName(wf.seq))
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, info, err
		}
		off := int64(0)
		sawHeader := false
		tornAt := int64(-1)
	records:
		for off < int64(len(data)) {
			typ, payload, next, err := readRecord(data, off)
			if err != nil {
				if last {
					tornAt = off // torn or trashed tail of the active file: end of log
					break records
				}
				return nil, info, fmt.Errorf("%w: %s: %v", ErrWALCorrupt, name, err)
			}
			switch typ {
			case recHeader:
				if sawHeader {
					return nil, info, fmt.Errorf("%w: %s: duplicate header record", ErrWALCorrupt, name)
				}
				startGen, err := decodeWALHeader(payload, fingerprint, wf.seq)
				if err != nil {
					return nil, info, fmt.Errorf("%w: %s: %v", ErrWALCorrupt, name, err)
				}
				wf.startGen = startGen
				sawHeader = true
			case recBatch:
				if !sawHeader {
					return nil, info, fmt.Errorf("%w: %s: batch record before header", ErrWALCorrupt, name)
				}
				gen, entries, err := decodeBatch(payload)
				if err != nil {
					return nil, info, fmt.Errorf("%w: %s: %v", ErrWALCorrupt, name, err)
				}
				if haveGen && gen != lastGen+1 {
					return nil, info, fmt.Errorf("%w: %s: generation gap (batch %d follows %d)", ErrWALCorrupt, name, gen, lastGen)
				}
				lastGen, haveGen = gen, true
				if fn != nil {
					if err := fn(gen, entries); err != nil {
						return nil, info, err
					}
				}
				info.Batches++
			case recSeal:
				if !sawHeader {
					return nil, info, fmt.Errorf("%w: %s: seal record before header", ErrWALCorrupt, name)
				}
				if next != int64(len(data)) {
					return nil, info, fmt.Errorf("%w: %s: %d bytes after seal record", ErrWALCorrupt, name, int64(len(data))-next)
				}
				wf.sealed = true
			default:
				return nil, info, fmt.Errorf("%w: %s: unknown record type %d", ErrWALCorrupt, name, typ)
			}
			off = next
		}
		if !last && !wf.sealed {
			return nil, info, fmt.Errorf("%w: %s: unsealed file is not the final one", ErrWALCorrupt, name)
		}
		if last {
			w.nextSeq = wf.seq + 1
			switch {
			case !sawHeader:
				// Even the header is torn (or the file is empty — created
				// but never written): nothing in the file is usable, and
				// keeping it as the active file would put batch records in
				// front of a header. Remove it; its sequence number is dead.
				info.TornBytes += int64(len(data))
				if err := fs.Remove(name); err != nil {
					return nil, info, err
				}
				if err := fs.SyncDir(dir); err != nil {
					return nil, info, err
				}
				w.files = w.files[:i]
			case tornAt >= 0:
				info.TornBytes += int64(len(data)) - tornAt
				if err := w.reopenTruncated(name, tornAt); err != nil {
					return nil, info, err
				}
			case !wf.sealed:
				if err := w.reopenTruncated(name, int64(len(data))); err != nil {
					return nil, info, err
				}
			}
			// A sealed final file stays closed; the next append rotates.
		}
	}
	return w, info, nil
}

// reopenTruncated cuts the active file to the last whole record and opens
// it for appending, syncing so the truncation is durable before any new
// record lands after it.
func (w *WAL) reopenTruncated(name string, size int64) error {
	if err := w.fs.Truncate(name, size); err != nil {
		return err
	}
	f, err := w.fs.Append(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.f, w.active = f, name
	return nil
}

// decodeWALHeader validates a header record payload.
func decodeWALHeader(payload []byte, fingerprint, seq uint64) (startGen uint64, err error) {
	if len(payload) != 8+8+8+8 {
		return 0, fmt.Errorf("header record has %d bytes", len(payload))
	}
	if string(payload[:8]) != string(walMagic[:]) {
		return 0, fmt.Errorf("bad WAL magic")
	}
	if fp := binary.LittleEndian.Uint64(payload[8:16]); fp != fingerprint {
		return 0, fmt.Errorf("fingerprint %016x does not match the database (%016x)", fp, fingerprint)
	}
	if s := binary.LittleEndian.Uint64(payload[24:32]); s != seq {
		return 0, fmt.Errorf("header claims sequence %d, file name says %d", s, seq)
	}
	return binary.LittleEndian.Uint64(payload[16:24]), nil
}

func encodeWALHeader(fingerprint, startGen, seq uint64) []byte {
	p := make([]byte, 0, 32)
	p = append(p, walMagic[:]...)
	p = binary.LittleEndian.AppendUint64(p, fingerprint)
	p = binary.LittleEndian.AppendUint64(p, startGen)
	p = binary.LittleEndian.AppendUint64(p, seq)
	return p
}

// encodeBatch renders a batch record payload: the generation, the entry
// count, then ascending-ID entries as (uvarint ID delta, fixed64 value).
func encodeBatch(buf []byte, gen uint64, entries []Entry) []byte {
	buf = appendUvarint(buf, gen)
	buf = appendUvarint(buf, uint64(len(entries)))
	prev := int64(0)
	for _, e := range entries {
		buf = appendUvarint(buf, uint64(e.ID-prev))
		prev = e.ID
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(e.Value))
		buf = append(buf, v[:]...)
	}
	return buf
}

// decodeBatch parses a batch record payload.
func decodeBatch(payload []byte) (gen uint64, entries []Entry, err error) {
	d := &decoder{data: payload}
	gen, err = d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	// Each entry costs at least 9 bytes (1-byte delta + 8-byte value).
	if n > uint64(len(payload))/9 {
		return 0, nil, fmt.Errorf("batch claims %d entries in %d bytes", n, len(payload))
	}
	entries = make([]Entry, n)
	id := int64(0)
	for i := range entries {
		delta, err := d.uvarint()
		if err != nil {
			return 0, nil, err
		}
		id += int64(delta)
		if i > 0 && delta == 0 {
			return 0, nil, fmt.Errorf("batch entry %d repeats ID %d", i, id)
		}
		vb, err := d.bytes(8)
		if err != nil {
			return 0, nil, err
		}
		entries[i] = Entry{ID: id, Value: math.Float64frombits(binary.LittleEndian.Uint64(vb))}
	}
	if d.off != len(payload) {
		return 0, nil, fmt.Errorf("%d stray bytes after batch", len(payload)-d.off)
	}
	return gen, entries, nil
}

// Append logs one committed batch (entries must be in ascending ID order)
// and applies the sync policy. On return under SyncAlways the batch is
// durable; the caller may then apply it in memory. Any failure poisons the
// WAL: the record stream must not continue after a partial write.
func (w *WAL) Append(gen uint64, entries []Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].ID <= entries[i-1].ID {
			return fmt.Errorf("segment: batch entries out of order (%d after %d)", entries[i].ID, entries[i-1].ID)
		}
	}
	if w.f == nil {
		if err := w.startFile(gen); err != nil {
			return w.poison(err)
		}
	}
	w.payload = encodeBatch(w.payload[:0], gen, entries)
	w.buf = appendRecord(w.buf[:0], recBatch, w.payload)
	rec := w.buf
	if err := w.writeAll(rec); err != nil {
		return w.poison(err)
	}
	w.appends++
	w.appendedBytes += int64(len(rec))
	if w.policy >= 0 {
		w.sinceSync++
		every := int(w.policy)
		if every < 1 {
			every = 1
		}
		if w.sinceSync >= every {
			if err := w.f.Sync(); err != nil {
				return w.poison(err)
			}
			w.syncs++
			w.sinceSync = 0
		}
	}
	return nil
}

// writeAll writes b fully or fails (a short write is a failure: the frame
// is torn on disk and nothing may be appended after it).
func (w *WAL) writeAll(b []byte) error {
	n, err := w.f.Write(b)
	if err == nil && n < len(b) {
		err = fmt.Errorf("segment: short write (%d of %d bytes)", n, len(b))
	}
	return err
}

// poison records a permanent failure.
func (w *WAL) poison(err error) error {
	w.failed = fmt.Errorf("segment: WAL failed permanently: %w", err)
	return w.failed
}

// startFile creates the next WAL file with a durable header.
func (w *WAL) startFile(startGen uint64) error {
	seq := w.nextSeq
	name := path.Join(w.dir, walFileName(seq))
	f, err := w.fs.Create(name)
	if err != nil {
		return err
	}
	hdr := appendRecord(nil, recHeader, encodeWALHeader(w.fingerprint, startGen, seq))
	if n, err := f.Write(hdr); err != nil || n < len(hdr) {
		f.Close()
		if err == nil {
			err = fmt.Errorf("segment: short header write")
		}
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.active = f, name
	w.nextSeq = seq + 1
	w.files = append(w.files, walFile{seq: seq, startGen: startGen})
	w.appendedBytes += int64(len(hdr))
	return nil
}

// Rotate seals the active file (sync + seal record + sync) and arranges
// for the next append to start a fresh file at nextGen. Sealing is the
// gate for compaction: only sealed spans may be compacted and removed.
func (w *WAL) Rotate(nextGen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.f != nil {
		seal := appendRecord(nil, recSeal, nil)
		if err := w.writeAll(seal); err != nil {
			return w.poison(err)
		}
		if err := w.f.Sync(); err != nil {
			return w.poison(err)
		}
		w.syncs++
		w.sinceSync = 0
		if err := w.f.Close(); err != nil {
			return w.poison(err)
		}
		w.f, w.active = nil, ""
		if len(w.files) > 0 {
			w.files[len(w.files)-1].sealed = true
		}
	}
	return w.startFileLocked(nextGen)
}

// startFileLocked is startFile with poisoning; callers hold w.mu.
func (w *WAL) startFileLocked(startGen uint64) error {
	if err := w.startFile(startGen); err != nil {
		return w.poison(err)
	}
	return nil
}

// RemoveBelow deletes sealed WAL files whose entire generation range lies
// below gen — call it after the covering segment (or snapshot) is durable.
func (w *WAL) RemoveBelow(gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	kept := w.files[:0]
	removed := false
	for i := range w.files {
		wf := w.files[i]
		// The file's range ends where the next file starts; the final file
		// (or an unsealed one) is never removable.
		if wf.sealed && i+1 < len(w.files) && w.files[i+1].startGen <= gen {
			name := path.Join(w.dir, walFileName(wf.seq))
			if err := w.fs.Remove(name); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, wf)
	}
	w.files = kept
	if removed {
		return w.fs.SyncDir(w.dir)
	}
	return nil
}

// Sync flushes the active file regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return w.poison(err)
	}
	w.syncs++
	w.sinceSync = 0
	return nil
}

// Close syncs and closes the active file. The WAL is unusable afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		w.syncs++
	}
	w.f = nil
	w.failed = errors.New("segment: WAL closed")
	return err
}

// Stats reports cumulative append/sync counters for the engine's metrics
// mirror.
func (w *WAL) Stats() (appends, syncs, bytes int64, files int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs, w.appendedBytes, len(w.files)
}

// EarliestStartGen reports the start generation of the oldest WAL file,
// or false when the log holds no files. After recovery it is the earliest
// generation the log still carries — the point the next compaction span
// must start at.
func (w *WAL) EarliestStartGen() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.files) == 0 {
		return 0, false
	}
	return w.files[0].startGen, true
}
