package segment

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models crash semantics precisely enough to
// prove fsync placement: every file has live content (what reads and the
// running process see) and durable content (what a crash preserves, i.e.
// what has been fsynced), and every directory entry is likewise live until
// SyncDir commits it. Crash() collapses the filesystem to its durable
// image — unsynced appends vanish, renamed files revert, created-but-
// unsynced entries disappear — which is exactly the adversary the WAL and
// snapshot code must survive.
//
// Fault injection: SetWriteLimit arms a byte budget across all future
// writes; once spent, writes persist a prefix and fail with ErrInjected,
// producing torn records at any chosen offset. FlipBit corrupts one bit of
// a file's durable image, modeling media corruption that fsync cannot
// protect against. Clone snapshots the whole filesystem so a test can
// branch one workload run into many crash points.
//
// MemFS is exported (not test-only) so the engine-level crash harness in
// internal/f2db can drive the real OpenDurable path against it.
type MemFS struct {
	mu sync.Mutex
	// inodes carry content; names bind to inodes. Live and durable
	// namespaces bind independently (rename moves the live binding;
	// SyncDir commits bindings per directory), while content durability is
	// per inode (File.Sync).
	live    map[string]*memInode
	durable map[string]*memInode
	dirs    map[string]bool // live directories (MkdirAll); always durable

	// writeBudget < 0 disables injection; otherwise the number of bytes
	// future writes may still persist before failing.
	writeBudget int64
}

type memInode struct {
	data    []byte // live content
	synced  int    // prefix of data that survives a crash
	durData []byte // content at last Sync (synced bytes, stable copy)
}

// ErrInjected is returned by writes that hit an armed fault.
var ErrInjected = errors.New("segment: injected write fault")

// NewMemFS returns an empty in-memory filesystem with fault injection
// disarmed.
func NewMemFS() *MemFS {
	return &MemFS{
		live:        make(map[string]*memInode),
		durable:     make(map[string]*memInode),
		dirs:        map[string]bool{".": true, "": true, "/": true},
		writeBudget: -1,
	}
}

func clean(name string) string { return path.Clean(strings.ReplaceAll(name, "\\", "/")) }

// SetWriteLimit arms the write fault: the next n bytes written (across all
// files) succeed, then every write persists what fits in the remaining
// budget and returns ErrInjected. n < 0 disarms.
func (m *MemFS) SetWriteLimit(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeBudget = n
}

// FlipBit flips one bit in the durable image of name (bit 0-7 of the byte
// at off), modeling on-media corruption. It also patches the live view so
// subsequent reads see the damage without needing a crash.
func (m *MemFS) FlipBit(name string, off int64, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	ino, ok := m.live[name]
	if !ok {
		return fmt.Errorf("memfs: flipbit: %s: no such file", name)
	}
	if off < 0 || off >= int64(len(ino.data)) {
		return fmt.Errorf("memfs: flipbit: %s: offset %d out of range", name, off)
	}
	ino.data[off] ^= 1 << (bit & 7)
	if off < int64(len(ino.durData)) {
		ino.durData[off] ^= 1 << (bit & 7)
	}
	return nil
}

// Crash collapses the filesystem to its durable image: the namespace
// reverts to the last SyncDir per directory, and every file's content
// reverts to its last Sync. Open Files keep writing into dropped inodes —
// harmless, like a process writing to an unlinked file.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = make(map[string]*memInode, len(m.durable))
	for name, ino := range m.durable {
		m.live[name] = &memInode{
			data:    append([]byte(nil), ino.durData...),
			synced:  len(ino.durData),
			durData: append([]byte(nil), ino.durData...),
		}
	}
	m.durable = make(map[string]*memInode, len(m.live))
	for name, ino := range m.live {
		m.durable[name] = ino
	}
}

// Clone returns a deep copy of the filesystem (live and durable state),
// with fault injection disarmed on the copy. Tests branch one run into
// many crash points with it.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	seen := make(map[*memInode]*memInode)
	cp := func(ino *memInode) *memInode {
		if ino == nil {
			return nil
		}
		if d, ok := seen[ino]; ok {
			return d
		}
		d := &memInode{
			data:    append([]byte(nil), ino.data...),
			synced:  ino.synced,
			durData: append([]byte(nil), ino.durData...),
		}
		seen[ino] = d
		return d
	}
	for name, ino := range m.live {
		c.live[name] = cp(ino)
	}
	for name, ino := range m.durable {
		c.durable[name] = cp(ino)
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// DurableLen returns the durable (crash-surviving) byte count of name, or
// -1 when the file has no durable entry.
func (m *MemFS) DurableLen(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.durable[clean(name)]
	if !ok {
		return -1
	}
	return int64(len(ino.durData))
}

func (m *MemFS) checkDir(name string) error {
	dir := path.Dir(name)
	if !m.dirs[dir] {
		return fmt.Errorf("memfs: %s: directory %s does not exist", name, dir)
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if err := m.checkDir(name); err != nil {
		return nil, err
	}
	ino := &memInode{}
	m.live[name] = ino
	return &memFile{fs: m, name: name, ino: ino}, nil
}

// Append implements FS.
func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if err := m.checkDir(name); err != nil {
		return nil, err
	}
	ino, ok := m.live[name]
	if !ok {
		ino = &memInode{}
		m.live[name] = ino
	}
	return &memFile{fs: m, name: name, ino: ino}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", clean(name), iofs.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("memfs: %s: no such directory", dir)
	}
	var names []string
	for name := range m.live {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	ino, ok := m.live[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldname, iofs.ErrNotExist)
	}
	if err := m.checkDir(newname); err != nil {
		return err
	}
	delete(m.live, oldname)
	m.live[newname] = ino
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if _, ok := m.live[name]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", name, iofs.ErrNotExist)
	}
	delete(m.live, name)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.live[clean(name)]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: %w", clean(name), iofs.ErrNotExist)
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("memfs: truncate %s: size %d out of range", clean(name), size)
	}
	ino.data = ino.data[:size]
	if ino.synced > int(size) {
		ino.synced = int(size)
	}
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	for d := dir; ; d = path.Dir(d) {
		m.dirs[d] = true
		if d == path.Dir(d) {
			break
		}
	}
	return nil
}

// SyncDir implements FS: commits the directory's live entries (creations,
// renames, removals) to the durable namespace.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	for name := range m.durable {
		if path.Dir(name) != dir {
			continue
		}
		if _, ok := m.live[name]; !ok {
			delete(m.durable, name)
		}
	}
	for name, ino := range m.live {
		if path.Dir(name) == dir {
			m.durable[name] = ino
		}
	}
	return nil
}

// memFile is the write handle over a MemFS inode.
type memFile struct {
	fs     *MemFS
	name   string
	ino    *memInode
	closed bool
}

// Write appends to the file's live content, honoring the armed write
// budget: bytes past the budget are dropped and ErrInjected returned, so a
// "kill at offset" cuts a record exactly where the test aimed.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("memfs: write %s: file closed", f.name)
	}
	n := len(p)
	if f.fs.writeBudget >= 0 {
		if int64(n) > f.fs.writeBudget {
			n = int(f.fs.writeBudget)
		}
		f.fs.writeBudget -= int64(n)
	}
	f.ino.data = append(f.ino.data, p[:n]...)
	if n < len(p) {
		return n, ErrInjected
	}
	return n, nil
}

// Sync commits the live content to the durable image.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("memfs: sync %s: file closed", f.name)
	}
	f.ino.synced = len(f.ino.data)
	f.ino.durData = append(f.ino.durData[:0], f.ino.data...)
	return nil
}

// Close implements File; closing never syncs (exactly like the OS).
func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
