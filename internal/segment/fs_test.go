package segment

import (
	"bytes"
	"errors"
	iofs "io/fs"
	"testing"
)

func writeAllTo(t *testing.T, fs FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSCrashSemantics(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}

	// Synced content and a synced directory: survives. An entry whose name
	// was synced but whose content never was keeps the name with whatever
	// content was last synced — nothing.
	writeAllTo(t, fs, "d/durable", []byte("stays"), true)
	writeAllTo(t, fs, "d/name-only", []byte("content vanishes"), false)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	// Created after the directory sync: written, even content-synced, but
	// the name is not durable — exactly why startFile and WriteFileSync
	// call SyncDir after creating or renaming.
	writeAllTo(t, fs, "d/no-dirsync", []byte("gone"), true)
	// An unsynced append on top of a durable prefix: the prefix survives.
	f, err := fs.Append("d/durable")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" and more")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs.Crash()

	if _, err := fs.ReadFile("d/no-dirsync"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("file without directory sync after crash: %v", err)
	}
	if data, err := fs.ReadFile("d/name-only"); err != nil || len(data) != 0 {
		t.Fatalf("never-synced content after crash: %q, %v", data, err)
	}
	data, err := fs.ReadFile("d/durable")
	if err != nil || string(data) != "stays" {
		t.Fatalf("durable file after crash: %q, %v", data, err)
	}
}

func TestMemFSRenameWithoutDirSyncRevertsOnCrash(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeAllTo(t, fs, "d/old", []byte("v1"), true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("d/old", "d/new"); err != nil {
		t.Fatal(err)
	}
	// Live view sees the rename...
	if _, err := fs.ReadFile("d/new"); err != nil {
		t.Fatal(err)
	}
	// ...but without SyncDir a crash rolls it back.
	fs.Crash()
	if _, err := fs.ReadFile("d/new"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("unsynced rename survived crash: %v", err)
	}
	if data, err := fs.ReadFile("d/old"); err != nil || string(data) != "v1" {
		t.Fatalf("old name after crash: %q, %v", data, err)
	}
}

func TestMemFSClone(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeAllTo(t, fs, "d/f", []byte("one"), true)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	c := fs.Clone()
	writeAllTo(t, fs, "d/f", []byte("two"), true)
	if data, _ := c.ReadFile("d/f"); string(data) != "one" {
		t.Fatalf("clone sees writes to the original: %q", data)
	}
	writeAllTo(t, c, "d/g", []byte("clone-only"), true)
	if _, err := fs.ReadFile("d/g"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("original sees writes to the clone: %v", err)
	}
}

func TestWriteFileSyncSurvivesCrash(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileSync(fs, "d", "f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	data, err := fs.ReadFile("d/f")
	if err != nil || string(data) != "payload" {
		t.Fatalf("after crash: %q, %v", data, err)
	}
	names, _ := fs.ReadDir("d")
	if len(names) != 1 {
		t.Fatalf("stray files after WriteFileSync: %v", names)
	}
}

func TestWriteFileSyncReplaceKeepsOldOnFailure(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileSync(fs, "d", "f", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// The replacement write dies 2 bytes in: the helper must report the
	// failure and leave the old file untouched, with no tmp debris.
	fs.SetWriteLimit(2)
	if err := WriteFileSync(fs, "d", "f", []byte("newer-content")); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted WriteFileSync: %v", err)
	}
	fs.SetWriteLimit(-1)
	if data, err := fs.ReadFile("d/f"); err != nil || string(data) != "old" {
		t.Fatalf("old file after failed replace: %q, %v", data, err)
	}
	names, _ := fs.ReadDir("d")
	if len(names) != 1 || names[0] != "f" {
		t.Fatalf("tmp debris after failed replace: %v", names)
	}
	// And a crash on top changes nothing: the old content was durable.
	fs.Crash()
	if data, err := fs.ReadFile("d/f"); err != nil || string(data) != "old" {
		t.Fatalf("old file after failed replace + crash: %q, %v", data, err)
	}
}

func TestFaultWriterModes(t *testing.T) {
	payload := []byte("0123456789")

	t.Run("kill-at", func(t *testing.T) {
		var buf bytes.Buffer
		fw := &FaultWriter{W: &buf, Mode: FaultKillAt, N: 4}
		n, err := fw.Write(payload)
		if n != 4 || !errors.Is(err, ErrInjected) {
			t.Fatalf("crossing write: n=%d err=%v", n, err)
		}
		if buf.String() != "0123" {
			t.Fatalf("persisted %q", buf.String())
		}
		// Dead after the kill: nothing further persists.
		if n, err := fw.Write([]byte("xx")); n != 0 || !errors.Is(err, ErrInjected) {
			t.Fatalf("post-kill write: n=%d err=%v", n, err)
		}
		if buf.String() != "0123" {
			t.Fatalf("post-kill persisted %q", buf.String())
		}
	})

	t.Run("torn", func(t *testing.T) {
		var buf bytes.Buffer
		fw := &FaultWriter{W: &buf, Mode: FaultTorn, N: 4}
		if n, err := fw.Write(payload); n != 4 || !errors.Is(err, ErrInjected) {
			t.Fatalf("crossing write: n=%d err=%v", n, err)
		}
		// The device recovered: later writes pass through.
		if n, err := fw.Write([]byte("AB")); n != 2 || err != nil {
			t.Fatalf("post-torn write: n=%d err=%v", n, err)
		}
		if buf.String() != "0123AB" {
			t.Fatalf("persisted %q", buf.String())
		}
	})

	t.Run("short", func(t *testing.T) {
		var buf bytes.Buffer
		fw := &FaultWriter{W: &buf, Mode: FaultShort, N: 6}
		n, err := fw.Write(payload)
		if n != 6 || err != nil {
			t.Fatalf("short write must return n < len(p) with nil error: n=%d err=%v", n, err)
		}
		if buf.String() != "012345" {
			t.Fatalf("persisted %q", buf.String())
		}
	})

	t.Run("flip-bit", func(t *testing.T) {
		var buf bytes.Buffer
		fw := &FaultWriter{W: &buf, Mode: FaultFlipBit, N: 3}
		if n, err := fw.Write(payload); n != len(payload) || err != nil {
			t.Fatalf("flip write: n=%d err=%v", n, err)
		}
		want := append([]byte(nil), payload...)
		want[3] ^= 1
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("persisted %q, want %q", buf.Bytes(), want)
		}
	})
}

// TestFaultWriterFlipCaughtByCRC closes the loop between the two fault
// layers: a record written through a bit-flipping device must fail its CRC
// check on read.
func TestFaultWriterFlipCaughtByCRC(t *testing.T) {
	rec := appendRecord(nil, recBatch, []byte("some batch payload"))
	for off := int64(0); off < int64(len(rec)); off++ {
		var buf bytes.Buffer
		fw := &FaultWriter{W: &buf, Mode: FaultFlipBit, N: off}
		if _, err := fw.Write(rec); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := readRecord(buf.Bytes(), 0); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
}
