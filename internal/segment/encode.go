package segment

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Columnar encoding primitives: byte-aligned varints for lengths and
// delta-of-delta timestamps, and a bit-packed XOR stream for float64
// values (the Gorilla/FTDC approach: consecutive observations of one
// series share exponent and most mantissa bits, so XOR against the
// previous value concentrates the information in a short run the stream
// stores with an explicit leading-zero/length window).

// appendUvarint / appendVarint append protobuf-style varints.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// decoder walks a byte slice with bounds-checked reads; all errors funnel
// through one corruption message carrying the position.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("segment: corrupt at byte %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.errf("bad uvarint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.errf("bad varint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, d.errf("%d bytes wanted, %d remain", n, len(d.data)-d.off)
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits currently in cur
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := n; i > 0; i-- {
		w.writeBit(v >> (i - 1))
	}
}

// finish flushes the partial byte (zero-padded) and returns the stream.
func (w *bitWriter) finish() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	data []byte
	off  uint // bit offset
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("segment: bit read of %d bits", n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		byteIdx := (r.off + i) >> 3
		if byteIdx >= uint(len(r.data)) {
			return 0, fmt.Errorf("segment: bit stream truncated at bit %d", r.off+i)
		}
		bit := (r.data[byteIdx] >> (7 - ((r.off + i) & 7))) & 1
		v = v<<1 | uint64(bit)
	}
	r.off += n
	return v, nil
}

// appendTimesDoD encodes a timestamp column: the first value as a zigzag
// varint, the first delta as a zigzag varint, then one zigzag varint per
// remaining point holding the delta-of-delta. Regular sampling (our batch
// generations advance by exactly one) encodes to a single zero byte per
// point after the first two.
func appendTimesDoD(b []byte, times []int64) []byte {
	if len(times) == 0 {
		return b
	}
	b = appendVarint(b, times[0])
	if len(times) == 1 {
		return b
	}
	prevDelta := times[1] - times[0]
	b = appendVarint(b, prevDelta)
	for i := 2; i < len(times); i++ {
		delta := times[i] - times[i-1]
		b = appendVarint(b, delta-prevDelta)
		prevDelta = delta
	}
	return b
}

// decodeTimesDoD decodes count timestamps from d.
func decodeTimesDoD(d *decoder, count int) ([]int64, error) {
	if count == 0 {
		return nil, nil
	}
	// Each point costs at least one byte; reject counts the remaining
	// bytes cannot possibly hold before allocating for them.
	if count < 0 || count > len(d.data)-d.off {
		return nil, d.errf("timestamp count %d exceeds remaining bytes", count)
	}
	times := make([]int64, count)
	t0, err := d.varint()
	if err != nil {
		return nil, err
	}
	times[0] = t0
	if count == 1 {
		return times, nil
	}
	delta, err := d.varint()
	if err != nil {
		return nil, err
	}
	times[1] = times[0] + delta
	for i := 2; i < count; i++ {
		dod, err := d.varint()
		if err != nil {
			return nil, err
		}
		delta += dod
		times[i] = times[i-1] + delta
	}
	return times, nil
}

// appendValuesXOR encodes a float64 column as a Gorilla-style XOR bit
// stream: the first value raw (64 bits), then per value either a single 0
// bit (identical to predecessor), or 1 followed by a window reuse bit —
// 10 reuses the previous leading/length window, 11 writes a new one as
// 6 bits of leading zeros and 6 bits of significant-length-minus-one —
// and the significant XOR bits.
func appendValuesXOR(b []byte, values []float64) []byte {
	if len(values) == 0 {
		return b
	}
	w := bitWriter{buf: b}
	prev := math.Float64bits(values[0])
	w.writeBits(prev, 64)
	prevLead, prevSig := uint(65), uint(0) // invalid window: first XOR writes its own
	for _, v := range values[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 63 {
			lead = 63
		}
		trail := uint(bits.TrailingZeros64(xor))
		sig := 64 - lead - trail
		if prevLead <= lead && prevLead+prevSig >= lead+sig {
			// The previous window still covers every significant bit.
			w.writeBit(0)
			w.writeBits(xor>>(64-prevLead-prevSig), prevSig)
			continue
		}
		w.writeBit(1)
		w.writeBits(uint64(lead), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, sig)
		prevLead, prevSig = lead, sig
	}
	return w.finish()
}

// decodeValuesXOR decodes count float64 values from the bit stream in buf.
func decodeValuesXOR(buf []byte, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	// Every value past the first costs at least one bit, the first 64.
	if count < 0 || int64(count-1)+64 > int64(len(buf))*8 {
		return nil, fmt.Errorf("segment: value count %d exceeds %d stream bytes", count, len(buf))
	}
	r := bitReader{data: buf}
	values := make([]float64, count)
	prev, err := r.readBits(64)
	if err != nil {
		return nil, err
	}
	values[0] = math.Float64frombits(prev)
	lead, sig := uint(0), uint(0)
	for i := 1; i < count; i++ {
		ctrl, err := r.readBits(1)
		if err != nil {
			return nil, err
		}
		if ctrl == 0 {
			values[i] = math.Float64frombits(prev)
			continue
		}
		reuse, err := r.readBits(1)
		if err != nil {
			return nil, err
		}
		if reuse == 1 {
			l, err := r.readBits(6)
			if err != nil {
				return nil, err
			}
			s, err := r.readBits(6)
			if err != nil {
				return nil, err
			}
			lead, sig = uint(l), uint(s)+1
		} else if sig == 0 {
			return nil, fmt.Errorf("segment: XOR stream reuses a window before defining one")
		}
		if lead+sig > 64 {
			return nil, fmt.Errorf("segment: XOR window %d+%d exceeds 64 bits", lead, sig)
		}
		bitsv, err := r.readBits(sig)
		if err != nil {
			return nil, err
		}
		prev ^= bitsv << (64 - lead - sig)
		values[i] = math.Float64frombits(prev)
	}
	return values, nil
}
