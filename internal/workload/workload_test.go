package workload

import (
	"context"
	"net"
	"testing"
	"time"

	"cubefc/internal/core"
	"cubefc/internal/cube"
	"cubefc/internal/datasets"
	"cubefc/internal/f2db"
	"cubefc/internal/server"
)

func testDB(t *testing.T) (*f2db.DB, *Generator, *cube.Graph) {
	t.Helper()
	ds := datasets.GenX(1, 60, datasets.GenXOptions{Length: 40})
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.Run(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := f2db.Open(g, cfg, f2db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, New(g, 1), g
}

func TestNextBatchCoversAllBases(t *testing.T) {
	db, gen, _ := testDB(t)
	batch := gen.NextBatch()
	if len(batch) != db.Graph().NumBase() {
		t.Fatalf("batch size = %d, want %d", len(batch), db.Graph().NumBase())
	}
	for id, v := range batch {
		if !db.Graph().IsBase(id) {
			t.Fatal("batch contains non-base node")
		}
		if v < 0 {
			t.Fatal("negative insert value")
		}
	}
}

func TestQuerySQLIsParsable(t *testing.T) {
	db, gen, _ := testDB(t)
	for i := 0; i < 20; i++ {
		node := gen.RandomNode()
		sql := gen.QuerySQL(node, 2)
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("generated query %q failed: %v", sql, err)
		}
		if res.Node != node {
			t.Fatalf("query %q resolved to node %d, want %d", sql, res.Node, node)
		}
	}
}

func TestRunCounts(t *testing.T) {
	db, gen, _ := testDB(t)
	res, err := Run(db, gen, Options{TimePoints: 2, QueriesPerInsert: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantInserts := 2 * db.Graph().NumBase()
	if res.Inserts != wantInserts {
		t.Fatalf("inserts = %d, want %d", res.Inserts, wantInserts)
	}
	if res.Queries != 3*wantInserts {
		t.Fatalf("queries = %d, want %d", res.Queries, 3*wantInserts)
	}
	if res.AvgQueryTime <= 0 {
		t.Fatal("avg query time not measured")
	}
	if db.Stats().Batches != 2 {
		t.Fatalf("batches = %d, want 2", db.Stats().Batches)
	}
}

func TestRunViaSQL(t *testing.T) {
	db, gen, _ := testDB(t)
	res, err := Run(db, gen, Options{TimePoints: 1, QueriesPerInsert: 1, UseSQL: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries executed")
	}
}

// TestRunHotMix: with HotQueries set and HotFraction 1, every query comes
// from the fixed hot set, so the engine's plan cache sees at most
// HotQueries distinct statements no matter how many queries run — the
// read-heavy recurring mix the coordinator's result cache targets. The
// draw stream stays deterministic: two same-seed runs issue the same
// statements in the same order.
func TestRunHotMix(t *testing.T) {
	db, gen, g := testDB(t)
	opts := Options{
		TimePoints:       2,
		QueriesPerInsert: 4,
		UseSQL:           true,
		HotQueries:       3,
		HotFraction:      1,
	}
	res, err := Run(db, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 2*4*db.Graph().NumBase() {
		t.Fatalf("queries = %d, want %d", res.Queries, 2*4*db.Graph().NumBase())
	}
	if m := db.Metrics(); m.PlanCacheMisses > int64(opts.HotQueries) {
		t.Fatalf("hot mix produced %d distinct plans, want <= %d", m.PlanCacheMisses, opts.HotQueries)
	}

	// Same seed, same options → identical draw stream (the property the
	// twin comparisons rely on), including a mixed hot/cold fraction.
	mixed := Options{HotQueries: 3, HotFraction: 0.7}
	genA, genB := New(g, 99), New(g, 99)
	hotA, hotB := buildHotSet(genA, mixed), buildHotSet(genB, mixed)
	for i := 0; i < 200; i++ {
		if hotA.next(genA, i) != hotB.next(genB, i) {
			t.Fatalf("draw %d diverged; hot mix not deterministic per seed", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	_, _, g := testDB(t)
	a := New(g, 7)
	b := New(g, 7)
	for i := 0; i < 10; i++ {
		if a.RandomNode() != b.RandomNode() {
			t.Fatal("generator not deterministic per seed")
		}
	}
}

func TestSplitBatchPartition(t *testing.T) {
	db, gen, _ := testDB(t)
	batch := gen.NextBatch()
	for _, n := range []int{1, 3, 8, len(batch), len(batch) + 5} {
		parts := SplitBatch(batch, n)
		total := 0
		seen := make(map[int]bool)
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatalf("n=%d: empty part emitted", n)
			}
			for id, v := range part {
				if seen[id] {
					t.Fatalf("n=%d: node %d in two parts", n, id)
				}
				seen[id] = true
				if v != batch[id] {
					t.Fatalf("n=%d: node %d value %v != %v", n, id, v, batch[id])
				}
				total++
			}
		}
		if total != len(batch) {
			t.Fatalf("n=%d: parts cover %d values, want %d", n, total, len(batch))
		}
	}
	_ = db
}

func TestRunParallelWriters(t *testing.T) {
	db, gen, _ := testDB(t)
	res, err := Run(db, gen, Options{TimePoints: 3, QueriesPerInsert: 1, InsertWriters: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantInserts := 3 * db.Graph().NumBase()
	if res.Inserts != wantInserts {
		t.Fatalf("inserts = %d, want %d", res.Inserts, wantInserts)
	}
	if db.Stats().Batches != 3 {
		t.Fatalf("batches = %d, want 3 (parallel streams must complete each advance)", db.Stats().Batches)
	}
	if db.Stats().PendingInserts != 0 {
		t.Fatalf("pending = %d after run", db.Stats().PendingInserts)
	}
}

// TestRunRemote drives the workload over the wire protocol against an
// in-process server and checks it performs the same work the local mode
// would: every insert lands (batches complete, nothing pending) and every
// query is answered.
func TestRunRemote(t *testing.T) {
	db, gen, _ := testDB(t)
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
	}()

	opts := Options{
		TimePoints:       3,
		QueriesPerInsert: 2,
		InsertWriters:    2,
		RemoteAddr:       ln.Addr().String(),
		RemoteReaders:    3,
	}
	res, err := Run(nil, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	numBase := db.Graph().NumBase()
	if res.Inserts != opts.TimePoints*numBase {
		t.Fatalf("Inserts = %d, want %d", res.Inserts, opts.TimePoints*numBase)
	}
	if want := opts.TimePoints * opts.QueriesPerInsert * numBase; res.Queries != want {
		t.Fatalf("Queries = %d, want %d", res.Queries, want)
	}
	st := db.Stats()
	if st.Inserts != opts.TimePoints*numBase || st.PendingInserts != 0 {
		t.Fatalf("engine absorbed %d inserts (%d pending), want %d (0 pending)",
			st.Inserts, st.PendingInserts, opts.TimePoints*numBase)
	}
	if st.Batches != opts.TimePoints {
		t.Fatalf("Batches = %d, want %d", st.Batches, opts.TimePoints)
	}
	if res.TotalTime <= 0 || res.AvgQueryTime <= 0 {
		t.Fatalf("timings not populated: %+v", res)
	}
}

// TestPhasedHotMix exercises Options.Phases: the hot set splits into
// disjoint contiguous slices and each time point's queries draw from one
// slice only, giving every template a deterministic recurring spike/trough
// schedule — the seasonal signal the self-tuning engine's workload models
// are trained on.
func TestPhasedHotMix(t *testing.T) {
	_, _, g := testDB(t)
	opts := Options{HotQueries: 8, HotFraction: 1, Phases: 4}
	gen := New(g, 11)
	hot := buildHotSet(gen, opts)
	if hot.phases != 4 {
		t.Fatalf("phases = %d, want 4", hot.phases)
	}

	// Each phase draws only from its own hot-set slice, and the slices
	// partition the set.
	sliceOf := make(map[int]int, len(hot.nodes))
	for i, n := range hot.nodes {
		p := i * hot.phases / len(hot.nodes)
		if q, ok := sliceOf[n]; ok && q != p {
			// A node drawn into two slices can legally appear in either;
			// skip the containment check for it.
			sliceOf[n] = -1
			continue
		}
		sliceOf[n] = p
	}
	for tp := 0; tp < 40; tp++ {
		n := hot.next(gen, tp)
		if p := sliceOf[n]; p != -1 && p != tp%hot.phases {
			t.Fatalf("tp %d drew node %d from phase %d, want phase %d", tp, n, p, tp%hot.phases)
		}
	}

	// Same seed and options → identical phased draw stream.
	genA, genB := New(g, 5), New(g, 5)
	hotA, hotB := buildHotSet(genA, opts), buildHotSet(genB, opts)
	for i := 0; i < 200; i++ {
		if hotA.next(genA, i) != hotB.next(genB, i) {
			t.Fatalf("draw %d diverged; phased mix not deterministic per seed", i)
		}
	}

	// Phases above the hot-set size clamp; 0 and 1 keep the flat mix.
	wide := buildHotSet(New(g, 1), Options{HotQueries: 3, Phases: 9})
	if wide.phases != 3 {
		t.Fatalf("phases = %d, want clamp to 3", wide.phases)
	}
	flat := buildHotSet(New(g, 1), Options{HotQueries: 3, Phases: 1})
	for i := 0; i < 50; i++ {
		// With phases <= 1 every draw may come from the whole set; just
		// assert it never panics and stays in the hot set under frac=1.
		_ = flat.next(New(g, int64(i)), i)
	}
}
