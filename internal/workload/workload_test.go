package workload

import (
	"testing"

	"cubefc/internal/core"
	"cubefc/internal/datasets"
	"cubefc/internal/f2db"
)

func testDB(t *testing.T) (*f2db.DB, *Generator) {
	t.Helper()
	ds := datasets.GenX(1, 60, datasets.GenXOptions{Length: 40})
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.Run(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := f2db.Open(g, cfg, f2db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, New(g, 1)
}

func TestNextBatchCoversAllBases(t *testing.T) {
	db, gen := testDB(t)
	batch := gen.NextBatch()
	if len(batch) != len(db.Graph().BaseIDs) {
		t.Fatalf("batch size = %d, want %d", len(batch), len(db.Graph().BaseIDs))
	}
	for id, v := range batch {
		if !db.Graph().Nodes[id].IsBase {
			t.Fatal("batch contains non-base node")
		}
		if v < 0 {
			t.Fatal("negative insert value")
		}
	}
}

func TestQuerySQLIsParsable(t *testing.T) {
	db, gen := testDB(t)
	for i := 0; i < 20; i++ {
		node := gen.RandomNode()
		sql := gen.QuerySQL(node, 2)
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("generated query %q failed: %v", sql, err)
		}
		if res.Node != node {
			t.Fatalf("query %q resolved to node %d, want %d", sql, res.Node, node)
		}
	}
}

func TestRunCounts(t *testing.T) {
	db, gen := testDB(t)
	res, err := Run(db, gen, Options{TimePoints: 2, QueriesPerInsert: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantInserts := 2 * len(db.Graph().BaseIDs)
	if res.Inserts != wantInserts {
		t.Fatalf("inserts = %d, want %d", res.Inserts, wantInserts)
	}
	if res.Queries != 3*wantInserts {
		t.Fatalf("queries = %d, want %d", res.Queries, 3*wantInserts)
	}
	if res.AvgQueryTime <= 0 {
		t.Fatal("avg query time not measured")
	}
	if db.Stats().Batches != 2 {
		t.Fatalf("batches = %d, want 2", db.Stats().Batches)
	}
}

func TestRunViaSQL(t *testing.T) {
	db, gen := testDB(t)
	res, err := Run(db, gen, Options{TimePoints: 1, QueriesPerInsert: 1, UseSQL: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries executed")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	db, _ := testDB(t)
	a := New(db.Graph(), 7)
	b := New(db.Graph(), 7)
	for i := 0; i < 10; i++ {
		if a.RandomNode() != b.RandomNode() {
			t.Fatal("generator not deterministic per seed")
		}
	}
}
