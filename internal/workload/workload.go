// Package workload generates forecast-query and insert workloads against a
// loaded F²DB engine, reproducing the query/insert experiment of Figure 9b:
// a stream of time advances (one insert per base series per time point)
// interleaved with a configurable number of random forecast queries per
// insert.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cubefc/internal/cube"
	"cubefc/internal/f2db"
	"cubefc/internal/fclient"
)

// Generator produces random forecast queries and plausible insert values
// for a graph.
type Generator struct {
	g   *cube.Graph
	rng *rand.Rand
}

// New returns a deterministic workload generator.
func New(g *cube.Graph, seed int64) *Generator {
	return &Generator{g: g, rng: rand.New(rand.NewSource(seed))}
}

// RandomNode picks a uniformly random node (base or aggregated series, as
// in the paper: "random forecast queries for base and aggregated time
// series").
func (w *Generator) RandomNode() int {
	return w.rng.Intn(w.g.NumNodes())
}

// QuerySQL renders a forecast query for the node in the engine's SQL
// dialect. It reads the coordinate from the graph skeleton (CoordOf), not
// the node, so rendering queries against a lazy cube never materializes
// the target — materialization happens in whichever engine answers.
func (w *Generator) QuerySQL(nodeID, steps int) string {
	sql := "SELECT time, SUM(m) FROM facts"
	first := true
	for d, cell := range w.g.CoordOf(nodeID) {
		dim := &w.g.Dims[d]
		if cell.IsAll(dim) {
			continue
		}
		if first {
			sql += " WHERE "
			first = false
		} else {
			sql += " AND "
		}
		sql += fmt.Sprintf("%s = '%s'", dim.Levels[cell.Level], cell.Value)
	}
	sql += fmt.Sprintf(" GROUP BY time AS OF now() + '%d steps'", steps)
	return sql
}

// InsertSQL renders a batch of base-series values (keyed by base node ID)
// as one multi-row INSERT statement in the engine's dialect, rows in
// ascending node-ID order. This is the write path of remote workloads:
// a statement per writer stream, executed over the wire by fclient.Exec.
func (w *Generator) InsertSQL(batch map[int]float64) string {
	ids := make([]int, 0, len(batch))
	for id := range batch {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString("INSERT INTO facts VALUES ")
	for i, id := range ids {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for _, cell := range w.g.CoordOf(id) {
			b.WriteString("'")
			b.WriteString(cell.Value)
			b.WriteString("', ")
		}
		b.WriteString(strconv.FormatFloat(batch[id], 'f', -1, 64))
		b.WriteString(")")
	}
	return b.String()
}

// SplitBatch partitions a full insert batch into n sub-batches of near-equal
// size (keyed by base node ID, ascending), one per concurrent insert stream.
// Applying every part — in any order, from any number of goroutines —
// completes the same time advance as applying the original batch at once.
func SplitBatch(batch map[int]float64, n int) []map[int]float64 {
	if n < 1 {
		n = 1
	}
	ids := make([]int, 0, len(batch))
	for id := range batch {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]map[int]float64, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ids)/n, (i+1)*len(ids)/n
		if lo == hi {
			continue
		}
		part := make(map[int]float64, hi-lo)
		for _, id := range ids[lo:hi] {
			part[id] = batch[id]
		}
		parts = append(parts, part)
	}
	return parts
}

// NextBatch synthesizes the next time-stamp value for every base series:
// the seasonal-naive continuation of each series perturbed with
// proportional noise — a plausible "new actual" stream.
func (w *Generator) NextBatch() map[int]float64 {
	out := make(map[int]float64, len(w.g.BaseIDs))
	for _, id := range w.g.BaseIDs {
		s := w.g.Node(id).Series
		n := s.Len()
		lag := s.Period
		if lag < 1 || lag > n {
			lag = 1
		}
		base := s.Values[n-lag]
		v := base * (1 + 0.05*w.rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		out[id] = v
	}
	return out
}

// RunResult aggregates a workload execution.
type RunResult struct {
	Queries       int
	Inserts       int
	AvgQueryTime  time.Duration
	TotalTime     time.Duration
	QueryTime     time.Duration // engine time spent answering queries
	MaintainTime  time.Duration // engine time spent on insert maintenance
	Reestimations int
}

// EngineTimePerQuery is the engine-side cost per forecast query including
// the amortized maintenance share of the interleaved inserts — the measure
// plotted in Figure 9b.
func (r RunResult) EngineTimePerQuery() time.Duration {
	if r.Queries == 0 {
		return 0
	}
	return (r.QueryTime + r.MaintainTime) / time.Duration(r.Queries)
}

// Options configures Run.
type Options struct {
	// TimePoints is the number of full insert batches (time advances);
	// the paper uses 10.
	TimePoints int
	// QueriesPerInsert is the query/insert ratio (paper: 1..10).
	QueriesPerInsert int
	// Horizon is the forecast horizon per query in steps (default 1).
	Horizon int
	// UseSQL routes queries through the SQL parser instead of the direct
	// node API (slower; exercises the full query processor).
	UseSQL bool
	// PerPointInserts routes inserts through InsertBase one value at a
	// time instead of the batched InsertBatch write path (slower; useful
	// for comparing the two and for interleaving queries mid-batch).
	PerPointInserts bool
	// InsertWriters drives each time advance from this many parallel
	// insert streams: the batch is split into InsertWriters disjoint parts
	// applied by concurrent goroutines, exercising the engine's striped
	// write path. 0 or 1 keeps the single sequential stream. Ignored when
	// PerPointInserts is set. In remote mode this is the N of "N writer
	// connections": each stream executes its part as one multi-row INSERT
	// over its own pooled connection.
	InsertWriters int

	// HotQueries, when > 0, draws queries from a fixed recurring "hot set"
	// of this many statement targets: each query picks a hot-set node with
	// probability HotFraction instead of a fresh uniform draw — the
	// recurring-template distribution real dashboards exhibit and the
	// coordinator's result cache exploits. The set is drawn from the
	// generator stream at Run start, so equal seeds and options produce
	// equal hot sets and equal statement streams, local or remote. 0 keeps
	// the all-random mix.
	HotQueries int
	// HotFraction is the probability a query targets the hot set (used
	// only when HotQueries > 0; default 0.9).
	HotFraction float64
	// Phases, when > 1, makes the hot mix time-varying: the hot set is
	// split into Phases disjoint contiguous slices and the queries issued
	// after time point tp draw their hot targets from slice tp % Phases
	// only. The workload then cycles through recurring per-template spike
	// (in phase) and trough (out of phase) periods — the schedule the
	// self-tuning engine's seasonal workload models predict — while
	// staying fully deterministic per seed: equal seeds and options give
	// equal phase schedules, local or remote. Capped at HotQueries;
	// ignored without a hot set.
	Phases int

	// RemoteAddr, when non-empty, drives a live f2dbd at this address over
	// internal/fclient instead of the in-process engine: queries go
	// through the wire protocol (always SQL — UseSQL is implied), inserts
	// through multi-row INSERT statements. The generator's graph must
	// match the data set the daemon serves. The db argument to Run is
	// ignored and may be nil; engine-side QueryTime/MaintainTime are not
	// populated (they live in the server process — scrape its /metrics
	// endpoint instead).
	RemoteAddr string
	// RemoteReaders is the M of "M reader connections" in remote mode:
	// forecast queries are issued from this many concurrent goroutines,
	// each with its own pooled connection. Default 1.
	RemoteReaders int

	// OnQueryResult, when non-nil, receives every query result together
	// with the query's global sequence index in the deterministic
	// statement stream. A local (UseSQL) run and a remote run with the
	// same generator seed and options produce the same index→statement
	// mapping, so twin runs compare results pairwise by index. Remote mode
	// invokes it from the reader goroutines: it must be safe for
	// concurrent use. Ignored on the local direct-node path (no SQL
	// statement stream to index).
	OnQueryResult func(i int, res *f2db.Result)
}

// hotSet is the recurring-query mix of Options.HotQueries: a fixed set of
// node targets most queries are drawn from, optionally sliced into
// time-varying phases (Options.Phases).
type hotSet struct {
	nodes  []int
	frac   float64
	phases int
}

// buildHotSet renders the hot set from the generator stream (HotQueries
// RandomNode draws), so equal seeds and options give equal sets.
func buildHotSet(gen *Generator, opts Options) *hotSet {
	if opts.HotQueries <= 0 {
		return nil
	}
	frac := opts.HotFraction
	if frac <= 0 {
		frac = 0.9
	}
	if frac > 1 {
		frac = 1
	}
	h := &hotSet{nodes: make([]int, opts.HotQueries), frac: frac, phases: opts.Phases}
	if h.phases > len(h.nodes) {
		h.phases = len(h.nodes)
	}
	for i := range h.nodes {
		h.nodes[i] = gen.RandomNode()
	}
	return h
}

// next draws one query target for the given phase: a hot-set node with
// probability frac — from the phase's slice when the mix is phased, from
// the whole set otherwise — or a fresh uniform node. A nil hotSet is the
// all-random mix.
func (h *hotSet) next(gen *Generator, phase int) int {
	if h != nil && gen.rng.Float64() < h.frac {
		nodes := h.nodes
		if h.phases > 1 {
			p := phase % h.phases
			lo, hi := p*len(h.nodes)/h.phases, (p+1)*len(h.nodes)/h.phases
			nodes = h.nodes[lo:hi]
		}
		return nodes[gen.rng.Intn(len(nodes))]
	}
	return gen.RandomNode()
}

// Run executes the interleaved workload against the engine: for every time
// point, each base series receives one insert, and QueriesPerInsert random
// forecast queries are issued per insert.
func Run(db *f2db.DB, gen *Generator, opts Options) (RunResult, error) {
	if opts.TimePoints <= 0 {
		opts.TimePoints = 10
	}
	if opts.QueriesPerInsert <= 0 {
		opts.QueriesPerInsert = 1
	}
	if opts.Horizon <= 0 {
		opts.Horizon = 1
	}
	hot := buildHotSet(gen, opts)
	if opts.RemoteAddr != "" {
		return runRemote(gen, hot, opts)
	}
	var res RunResult
	statsBefore := db.Stats()
	start := time.Now()
	var queryTime time.Duration
	baseIDs := db.Graph().BaseIDs()
	runQuery := func(node int) error {
		qs := time.Now()
		var err error
		if opts.UseSQL {
			var r *f2db.Result
			r, err = db.Query(gen.QuerySQL(node, opts.Horizon))
			if err == nil && opts.OnQueryResult != nil {
				opts.OnQueryResult(res.Queries, r)
			}
		} else {
			_, err = db.ForecastNode(node, opts.Horizon)
		}
		queryTime += time.Since(qs)
		if err != nil {
			return fmt.Errorf("workload: query on node %d: %w", node, err)
		}
		res.Queries++
		return nil
	}
	for tp := 0; tp < opts.TimePoints; tp++ {
		batch := gen.NextBatch()
		if opts.PerPointInserts {
			// Deterministic insert order, queries interleaved mid-batch.
			for _, id := range baseIDs {
				if err := db.InsertBase(id, batch[id]); err != nil {
					return res, err
				}
				res.Inserts++
				for q := 0; q < opts.QueriesPerInsert; q++ {
					if err := runQuery(hot.next(gen, tp)); err != nil {
						return res, err
					}
				}
			}
			continue
		}
		// Batched write path: the engine locks are taken once for the
		// whole time advance; the query/insert ratio is preserved by
		// issuing the batch's query share afterwards. With InsertWriters
		// > 1 the advance is driven by parallel streams over disjoint
		// parts of the batch (the striped write path's target workload).
		if opts.InsertWriters > 1 {
			parts := SplitBatch(batch, opts.InsertWriters)
			errs := make([]error, len(parts))
			var wg sync.WaitGroup
			for i, part := range parts {
				wg.Add(1)
				go func(i int, part map[int]float64) {
					defer wg.Done()
					errs[i] = db.InsertBatch(part)
				}(i, part)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return res, err
				}
			}
		} else if err := db.InsertBatch(batch); err != nil {
			return res, err
		}
		res.Inserts += len(batch)
		for q := 0; q < opts.QueriesPerInsert*len(baseIDs); q++ {
			if err := runQuery(hot.next(gen, tp)); err != nil {
				return res, err
			}
		}
	}
	res.TotalTime = time.Since(start)
	if res.Queries > 0 {
		res.AvgQueryTime = queryTime / time.Duration(res.Queries)
	}
	after := db.Stats()
	res.Reestimations = after.Reestimations - statsBefore.Reestimations
	res.QueryTime = after.QueryTime - statsBefore.QueryTime
	res.MaintainTime = after.MaintainTime - statsBefore.MaintainTime
	return res, nil
}

// runRemote executes the interleaved workload against a live f2dbd over
// the wire protocol: per time point, the batch is split over N writer
// connections (Options.InsertWriters) each executing its part as one
// multi-row INSERT, then the batch's query share is issued from M reader
// connections (Options.RemoteReaders). Writer and reader traffic use
// separate clients so insert statements never queue behind pipelined
// query bursts.
func runRemote(gen *Generator, hot *hotSet, opts Options) (RunResult, error) {
	writers := opts.InsertWriters
	if writers < 1 {
		writers = 1
	}
	readers := opts.RemoteReaders
	if readers < 1 {
		readers = 1
	}
	writeC, err := fclient.Dial(opts.RemoteAddr, fclient.Options{PoolSize: writers})
	if err != nil {
		return RunResult{}, fmt.Errorf("workload: dialing %s: %w", opts.RemoteAddr, err)
	}
	defer writeC.Close()
	readC, err := fclient.Dial(opts.RemoteAddr, fclient.Options{PoolSize: readers})
	if err != nil {
		return RunResult{}, fmt.Errorf("workload: dialing %s: %w", opts.RemoteAddr, err)
	}
	defer readC.Close()

	var res RunResult
	start := time.Now()
	var queryTime atomic.Int64
	var queries atomic.Int64
	numBase := len(gen.g.BaseIDs)
	for tp := 0; tp < opts.TimePoints; tp++ {
		batch := gen.NextBatch()
		parts := SplitBatch(batch, writers)
		werrs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i, part := range parts {
			wg.Add(1)
			go func(i int, part map[int]float64) {
				defer wg.Done()
				werrs[i] = writeC.Exec(gen.InsertSQL(part))
			}(i, part)
		}
		wg.Wait()
		for _, err := range werrs {
			if err != nil {
				return res, fmt.Errorf("workload: remote insert: %w", err)
			}
		}
		res.Inserts += len(batch)

		// The batch's query share, spread over the reader connections.
		// Node and horizon choices come from the generator up front so the
		// stream stays deterministic regardless of goroutine scheduling.
		total := opts.QueriesPerInsert * numBase
		qbase := tp * total // global index of this point's first query
		sqls := make([]string, total)
		for q := range sqls {
			sqls[q] = gen.QuerySQL(hot.next(gen, tp), opts.Horizon)
		}
		rerrs := make([]error, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for q := r; q < total; q += readers {
					qs := time.Now()
					qres, err := readC.Query(sqls[q])
					queryTime.Add(time.Since(qs).Nanoseconds())
					if err != nil {
						rerrs[r] = fmt.Errorf("workload: remote query: %w", err)
						return
					}
					if opts.OnQueryResult != nil {
						opts.OnQueryResult(qbase+q, qres)
					}
					queries.Add(1)
				}
			}(r)
		}
		wg.Wait()
		for _, err := range rerrs {
			if err != nil {
				return res, err
			}
		}
	}
	res.Queries = int(queries.Load())
	res.TotalTime = time.Since(start)
	if res.Queries > 0 {
		res.AvgQueryTime = time.Duration(queryTime.Load()) / time.Duration(res.Queries)
	}
	return res, nil
}
