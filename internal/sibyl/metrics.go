package sibyl

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics holds the engine's live counters. All fields are atomics so
// the ingest hot path and the control loop never share a lock with
// scrapers; read them with Load.
type Metrics struct {
	// Observed counts every ObserveTemplate call (the aggregate-QPS
	// stream is derived from its per-bucket deltas).
	Observed atomic.Int64
	// Templates is the current tracked-template gauge.
	Templates atomic.Int64
	// Dropped counts new templates rejected because the table was full
	// of warmer entries; Evicted counts templates removed by decay or to
	// admit a newcomer.
	Dropped atomic.Int64
	Evicted atomic.Int64
	// Buckets counts closed buckets (Ticks); Refits counts model fits
	// (per-template and aggregate); FitErrors counts fits that failed
	// and fell back to the EWMA rate.
	Buckets   atomic.Int64
	Refits    atomic.Int64
	FitErrors atomic.Int64
	// Spikes counts per-template spike classifications; Troughs counts
	// trough buckets.
	Spikes  atomic.Int64
	Troughs atomic.Int64
	// Actuator outcomes.
	Prewarms      atomic.Int64
	PrewarmErrors atomic.Int64
	TroughRuns    atomic.Int64
	TroughSkips   atomic.Int64
	Resizes       atomic.Int64
	ResizeSkips   atomic.Int64
}

// WritePrometheus renders the sibyl_* metric families in Prometheus text
// format. Its signature matches the exporter's Collector type so both
// daemons mount it without this package importing internal/f2db.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("sibyl_observed_total", "Query-template arrivals observed by the telemetry hook.", m.Observed.Load())
	gauge("sibyl_templates", "Workload templates currently tracked.", m.Templates.Load())
	counter("sibyl_templates_dropped_total", "New templates rejected by the full table.", m.Dropped.Load())
	counter("sibyl_templates_evicted_total", "Templates evicted by rate decay or replacement.", m.Evicted.Load())
	counter("sibyl_buckets_total", "Telemetry buckets closed.", m.Buckets.Load())
	counter("sibyl_refits_total", "Workload-model fits performed.", m.Refits.Load())
	counter("sibyl_fit_errors_total", "Workload-model fits that failed.", m.FitErrors.Load())
	counter("sibyl_spikes_total", "Per-template spike predictions.", m.Spikes.Load())
	counter("sibyl_troughs_total", "Aggregate trough predictions.", m.Troughs.Load())
	counter("sibyl_prewarms_total", "Spike templates pre-warmed.", m.Prewarms.Load())
	counter("sibyl_prewarm_errors_total", "Pre-warm executions that failed.", m.PrewarmErrors.Load())
	counter("sibyl_trough_runs_total", "Trough maintenance runs.", m.TroughRuns.Load())
	counter("sibyl_trough_skips_total", "Trough runs suppressed by hysteresis.", m.TroughSkips.Load())
	counter("sibyl_resizes_total", "Cache resizes applied.", m.Resizes.Load())
	counter("sibyl_resize_skips_total", "Cache resizes suppressed by the dead band.", m.ResizeSkips.Load())
}

// StatsLine renders the one-line self-tuning summary appended to the
// \stats output.
func (m *Metrics) StatsLine() string {
	return fmt.Sprintf(
		"selftune: observed=%d templates=%d buckets=%d refits=%d spikes=%d troughs=%d prewarms=%d trough-runs=%d resizes=%d evicted=%d dropped=%d\n",
		m.Observed.Load(), m.Templates.Load(), m.Buckets.Load(), m.Refits.Load(),
		m.Spikes.Load(), m.Troughs.Load(), m.Prewarms.Load(), m.TroughRuns.Load(),
		m.Resizes.Load(), m.Evicted.Load(), m.Dropped.Load())
}
