package sibyl

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// All tests drive the clock through Tick() directly: one call closes one
// bucket, so every schedule below is deterministic — no sleeps, no wall
// time.

func observeN(e *Engine, key string, n int) {
	for i := 0; i < n; i++ {
		e.ObserveTemplate(key)
	}
}

func TestBucketRollover(t *testing.T) {
	e := New(Options{})
	observeN(e, "SELECT a", 5)
	observeN(e, "SELECT b", 2)
	p := e.Tick()
	if p.Bucket != 1 {
		t.Fatalf("bucket = %d, want 1", p.Bucket)
	}
	if got := e.met.Observed.Load(); got != 7 {
		t.Fatalf("observed = %d, want 7", got)
	}
	if len(p.Templates) != 2 {
		t.Fatalf("templates = %d, want 2", len(p.Templates))
	}
	// First closed bucket seeds the EWMA with the raw count; sort order is
	// predicted (== rate here) descending.
	if p.Templates[0].Key != "SELECT a" || p.Templates[0].Rate != 5 {
		t.Fatalf("hottest = %+v, want SELECT a at rate 5", p.Templates[0])
	}
	if p.Templates[1].Rate != 2 {
		t.Fatalf("second rate = %v, want 2", p.Templates[1].Rate)
	}
	if p.AggRate != 7 {
		t.Fatalf("agg rate = %v, want 7", p.AggRate)
	}
	if p.WorkingSet != 2 {
		t.Fatalf("working set = %d, want 2", p.WorkingSet)
	}

	// An empty bucket decays the rates but keeps both templates (above
	// the eviction floor, too young anyway).
	p = e.Tick()
	if p.Templates[0].Rate >= 5 || p.Templates[0].Rate <= 0 {
		t.Fatalf("rate did not decay into (0,5): %v", p.Templates[0].Rate)
	}
}

func TestTemplateTableBound(t *testing.T) {
	e := New(Options{MaxTemplates: 2, HalfLife: 1, MinHistory: 2, EvictBelow: 0.25})
	// Make A and B genuinely hot (rate >= 1 after a tick)...
	observeN(e, "A", 8)
	observeN(e, "B", 8)
	e.Tick()
	// ...so a newcomer cannot displace either: it is dropped, its arrival
	// only counted in the aggregate.
	e.ObserveTemplate("C")
	if got := e.met.Dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if _, ok := e.templates.Load("C"); ok {
		t.Fatal("dropped template must not enter the table")
	}

	// Let B go cold: HalfLife 1 halves its rate every empty bucket, so it
	// falls below EvictBelow and is decay-evicted.
	for i := 0; i < 8; i++ {
		observeN(e, "A", 8)
		e.Tick()
	}
	if _, ok := e.templates.Load("B"); ok {
		t.Fatal("cold template survived decay eviction")
	}
	if e.met.Evicted.Load() == 0 {
		t.Fatal("eviction not counted")
	}
	// With a slot free, a newcomer registers normally.
	e.ObserveTemplate("D")
	if _, ok := e.templates.Load("D"); !ok {
		t.Fatal("newcomer not registered after eviction freed a slot")
	}
	if got := e.met.Templates.Load(); got != 2 {
		t.Fatalf("template gauge = %d, want 2", got)
	}
}

func TestColdVictimReplacement(t *testing.T) {
	e := New(Options{MaxTemplates: 2})
	// Neither A nor B has closed a bucket; both rates are 0 (< 1), so the
	// newcomer replaces the coldest (tie broken by key: A).
	e.ObserveTemplate("A")
	e.ObserveTemplate("B")
	e.ObserveTemplate("C")
	if _, ok := e.templates.Load("A"); ok {
		t.Fatal("cold victim A not replaced")
	}
	if _, ok := e.templates.Load("C"); !ok {
		t.Fatal("newcomer C not registered over cold victim")
	}
	if e.met.Evicted.Load() != 1 || e.met.Dropped.Load() != 0 {
		t.Fatalf("evicted/dropped = %d/%d, want 1/0", e.met.Evicted.Load(), e.met.Dropped.Load())
	}
}

// TestSeasonalSpikeForecast feeds a clean 4-periodic workload (one loaded
// bucket, three idle) and checks that once Holt-Winters has two seasons of
// history it predicts the loaded bucket before it happens — a spike at the
// right phase, never at the wrong one.
func TestSeasonalSpikeForecast(t *testing.T) {
	const season = 4
	e := New(Options{Season: season})
	rightPhase, wrongPhase := 0, 0
	for i := 0; i < 6*season; i++ {
		if i%season == 0 {
			observeN(e, "HOT", 12)
		}
		p := e.Tick()
		if i < 4*season {
			continue // warm-up: history + model settling
		}
		var hot *TemplateForecast
		for j := range p.Templates {
			if p.Templates[j].Key == "HOT" {
				hot = &p.Templates[j]
			}
		}
		if hot == nil {
			t.Fatalf("tick %d: HOT template missing", i)
		}
		nextLoaded := (i+1)%season == 0
		if hot.Spike {
			if nextLoaded {
				rightPhase++
			} else {
				wrongPhase++
			}
		}
	}
	if rightPhase < 2 {
		t.Fatalf("spike predicted before only %d of the loaded buckets", rightPhase)
	}
	if wrongPhase != 0 {
		t.Fatalf("spike predicted at %d idle phases", wrongPhase)
	}
}

// TestTroughSchedulingHysteresis drives the aggregate from busy to idle
// and checks TroughWork runs in the predicted troughs but no more than
// once per MinGap buckets.
func TestTroughSchedulingHysteresis(t *testing.T) {
	e := New(Options{})
	runs := 0
	e.Attach(&TroughWork{Run: func() { runs++ }, MinGap: 4})
	for i := 0; i < 8; i++ {
		observeN(e, "Q", 20)
		p := e.Tick()
		if p.Trough {
			t.Fatalf("tick %d: trough predicted during steady load", i)
		}
	}
	if runs != 0 {
		t.Fatalf("maintenance ran %d times during steady load", runs)
	}
	troughs := 0
	for i := 0; i < 9; i++ {
		if e.Tick().Trough {
			troughs++
		}
	}
	if troughs == 0 {
		t.Fatal("no trough predicted after traffic stopped")
	}
	if runs < 2 {
		t.Fatalf("maintenance ran %d times over 9 idle buckets, want >= 2", runs)
	}
	if runs > 3 {
		t.Fatalf("maintenance ran %d times over 9 idle buckets; MinGap 4 allows at most 3", runs)
	}
	if e.met.TroughSkips.Load() == 0 {
		t.Fatal("hysteresis skips not counted")
	}
}

func TestPrewarmBudget(t *testing.T) {
	var ran []string
	pw := &Prewarm{Run: func(sql string) error {
		ran = append(ran, sql)
		if sql == "S1" {
			return fmt.Errorf("boom")
		}
		return nil
	}, MaxPerTick: 2}
	p := Prediction{Templates: []TemplateForecast{
		{Key: "S0", Predicted: 9, Spike: true},
		{Key: "S1", Predicted: 8, Spike: true},
		{Key: "S2", Predicted: 7, Spike: true},
		{Key: "S3", Predicted: 99, Spike: false},
	}}
	var m Metrics
	pw.Act(p, &m)
	if len(ran) != 2 || ran[0] != "S0" || ran[1] != "S1" {
		t.Fatalf("ran %v, want hottest two spikes [S0 S1]", ran)
	}
	if m.Prewarms.Load() != 1 || m.PrewarmErrors.Load() != 1 {
		t.Fatalf("prewarms/errors = %d/%d, want 1/1", m.Prewarms.Load(), m.PrewarmErrors.Load())
	}
}

func TestCacheSizer(t *testing.T) {
	var applied []int
	cs := &CacheSizer{
		Apply:       func(n int) { applied = append(applied, n) },
		Min:         10,
		Max:         100,
		PerTemplate: 2,
		Slack:       1.5,
		Hysteresis:  0.25,
		Current:     10,
	}
	var m Metrics
	// WorkingSet 20 → target 20·2·1.5 = 60: outside the ±25% band of 10.
	cs.Act(Prediction{WorkingSet: 20}, &m)
	if len(applied) != 1 || applied[0] != 60 {
		t.Fatalf("applied %v, want [60]", applied)
	}
	// 22 → target 66: within 25% of 60, skipped.
	cs.Act(Prediction{WorkingSet: 22}, &m)
	if len(applied) != 1 {
		t.Fatalf("resize inside the dead band applied: %v", applied)
	}
	if m.ResizeSkips.Load() != 1 {
		t.Fatalf("skips = %d, want 1", m.ResizeSkips.Load())
	}
	// 1000 → clamps to Max.
	cs.Act(Prediction{WorkingSet: 1000}, &m)
	if applied[len(applied)-1] != 100 {
		t.Fatalf("max clamp: applied %v, want last 100", applied)
	}
	// 0 → clamps to Min.
	cs.Act(Prediction{WorkingSet: 0}, &m)
	if applied[len(applied)-1] != 10 {
		t.Fatalf("min clamp: applied %v, want last 10", applied)
	}
	if m.Resizes.Load() != 3 {
		t.Fatalf("resizes = %d, want 3", m.Resizes.Load())
	}
}

// TestStartStopRaceStress hammers the lock-free ingest path from many
// goroutines while the production ticker runs Tick concurrently; run with
// -race this proves the ingest/control-loop split is sound.
func TestStartStopRaceStress(t *testing.T) {
	e := New(Options{Bucket: time.Millisecond})
	e.Attach(&TroughWork{Run: func() {}, MinGap: 1})
	e.Start()
	e.Start() // idempotent
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e.ObserveTemplate(fmt.Sprintf("Q%d", i%32))
			}
		}(w)
	}
	wg.Wait()
	e.Stop()
	e.Stop() // idempotent
	if got := e.met.Observed.Load(); got != 8*2000 {
		t.Fatalf("observed = %d, want %d", got, 8*2000)
	}
}

func TestStatsLineAndPrometheus(t *testing.T) {
	e := New(Options{})
	observeN(e, "A", 3)
	e.Tick()
	line := e.Metrics().StatsLine()
	if line == "" || line[len(line)-1] != '\n' {
		t.Fatalf("stats line malformed: %q", line)
	}
	var sb syncBuffer
	e.Metrics().WritePrometheus(&sb)
	for _, fam := range []string{"sibyl_observed_total 3", "sibyl_templates 1", "sibyl_buckets_total 1"} {
		if !sb.contains(fam) {
			t.Fatalf("prometheus output missing %q:\n%s", fam, sb.String())
		}
	}
}

type syncBuffer struct{ b []byte }

func (s *syncBuffer) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *syncBuffer) String() string              { return string(s.b) }
func (s *syncBuffer) contains(sub string) bool {
	b, n := s.b, len(sub)
	for i := 0; i+n <= len(b); i++ {
		if string(b[i:i+n]) == sub {
			return true
		}
	}
	return false
}

// BenchmarkObserveTemplate measures the telemetry hook on the query hot
// path for an already-registered template — the overhead every query pays
// when -selftune is on (budget: ~100ns single-threaded).
func BenchmarkObserveTemplate(b *testing.B) {
	e := New(Options{})
	e.ObserveTemplate("SELECT time, SUM(m) FROM facts WHERE state = 'NSW'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ObserveTemplate("SELECT time, SUM(m) FROM facts WHERE state = 'NSW'")
	}
}

func BenchmarkObserveTemplateParallel(b *testing.B) {
	e := New(Options{})
	e.ObserveTemplate("SELECT time, SUM(m) FROM facts WHERE state = 'NSW'")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			e.ObserveTemplate("SELECT time, SUM(m) FROM facts WHERE state = 'NSW'")
		}
	})
}
