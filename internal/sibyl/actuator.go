// Actuators turn workload predictions into actions. They run on the
// control-loop goroutine only (one Act per Tick, sequential, never
// concurrently with each other), outside any engine lock, so they may
// call back into the serving tier freely.
package sibyl

import "math"

// TemplateForecast is the per-template slice of a Prediction.
type TemplateForecast struct {
	// Key is the normalized query template (f2db.NormalizeSQL output,
	// which is itself executable SQL).
	Key string
	// Rate is the template's EWMA arrival rate per bucket.
	Rate float64
	// Predicted is the model's next-bucket point forecast (the EWMA rate
	// until the template has a fitted model).
	Predicted float64
	// Spike reports that Predicted crossed the spike thresholds.
	Spike bool
}

// Prediction is the outcome of one Tick: the closed-bucket index, the
// per-template forecasts (sorted by Predicted descending, key ascending —
// deterministic given the observation sequence), the aggregate stream,
// and the derived classifications.
type Prediction struct {
	Bucket    int64
	Templates []TemplateForecast
	// AggRate and AggPredicted are the aggregate arrivals-per-bucket EWMA
	// and next-bucket forecast.
	AggRate      float64
	AggPredicted float64
	// Trough reports that the aggregate forecast fell below the trough
	// threshold — idle capacity is predicted for the next bucket.
	Trough bool
	// WorkingSet is the number of templates expected to stay active
	// (predicted or current rate of at least one arrival per bucket);
	// cache sizers scale from it.
	WorkingSet int
}

// Actuator consumes one Prediction per tick. Implementations record
// their outcomes in the shared Metrics.
type Actuator interface {
	Act(p Prediction, m *Metrics)
}

// Prewarm re-executes the templates predicted to spike so their plans
// and forecasts are resident before the traffic arrives. Because the
// warm-up runs the real query path, it performs exactly the work the
// first real query of the spike would have performed — it moves latency,
// it cannot change results.
type Prewarm struct {
	// Run executes one normalized statement (e.g. db.Query or co.Query
	// adapted to drop the result).
	Run func(sql string) error
	// MaxPerTick bounds warm-up work per bucket. Default 16.
	MaxPerTick int
}

// Act runs the spike templates, hottest predicted first.
func (pw *Prewarm) Act(p Prediction, m *Metrics) {
	if pw.Run == nil {
		return
	}
	budget := pw.MaxPerTick
	if budget <= 0 {
		budget = 16
	}
	for _, tf := range p.Templates {
		if !tf.Spike {
			continue
		}
		if budget == 0 {
			break
		}
		budget--
		if err := pw.Run(tf.Key); err != nil {
			m.PrewarmErrors.Add(1)
		} else {
			m.Prewarms.Add(1)
		}
	}
}

// TroughWork schedules deferred maintenance (eager re-estimation,
// segment compaction, checkpoints) into predicted idle buckets, with a
// bucket-count hysteresis so a long trough does not re-run the work
// every tick.
type TroughWork struct {
	// Run performs the maintenance. It is called at most once per MinGap
	// buckets, and only on ticks whose Prediction says Trough.
	Run func()
	// MinGap is the minimum number of buckets between runs. Default 8.
	MinGap int

	ran  bool
	last int64
}

// Act runs the maintenance if a trough is predicted and the gap has
// passed.
func (tw *TroughWork) Act(p Prediction, m *Metrics) {
	if tw.Run == nil || !p.Trough {
		return
	}
	gap := tw.MinGap
	if gap <= 0 {
		gap = 8
	}
	if tw.ran && p.Bucket-tw.last < int64(gap) {
		m.TroughSkips.Add(1)
		return
	}
	tw.ran, tw.last = true, p.Bucket
	tw.Run()
	m.TroughRuns.Add(1)
}

// CacheSizer resizes one cache from the predicted working-set size:
// target = WorkingSet · PerTemplate · Slack, clamped to [Min, Max].
// A relative hysteresis band suppresses resizes that would churn the
// cache for marginal gains.
type CacheSizer struct {
	// Name labels the sizer in logs.
	Name string
	// Apply resizes the cache (e.g. DB.SetPlanCacheCapacity).
	Apply func(entries int)
	// Min and Max clamp the target; Min also guards cold start (a zero
	// working set never shrinks the cache below Min). Zero values mean
	// 1 and no upper clamp respectively.
	Min, Max int
	// PerTemplate is the entries each active template is expected to
	// occupy (1 for plan-style caches, the typical distinct-forecast
	// fanout for the memo). Default 1.
	PerTemplate int
	// Slack is the over-provisioning factor. Default 1.25.
	Slack float64
	// Hysteresis is the relative dead band: a resize is skipped when
	// |target − current| ≤ Hysteresis · current. Default 0.25.
	Hysteresis float64
	// Current must be initialized to the cache's starting capacity; the
	// sizer tracks its own applied values afterwards.
	Current int
}

// Act computes the clamped target and applies it outside the dead band.
func (cs *CacheSizer) Act(p Prediction, m *Metrics) {
	if cs.Apply == nil {
		return
	}
	per := cs.PerTemplate
	if per <= 0 {
		per = 1
	}
	slack := cs.Slack
	if slack <= 0 {
		slack = 1.25
	}
	hys := cs.Hysteresis
	if hys <= 0 {
		hys = 0.25
	}
	target := int(float64(p.WorkingSet) * float64(per) * slack)
	min := cs.Min
	if min <= 0 {
		min = 1
	}
	if target < min {
		target = min
	}
	if cs.Max > 0 && target > cs.Max {
		target = cs.Max
	}
	if cs.Current > 0 && math.Abs(float64(target-cs.Current)) <= hys*float64(cs.Current) {
		m.ResizeSkips.Add(1)
		return
	}
	cs.Current = target
	cs.Apply(target)
	m.Resizes.Add(1)
}
