package sibyl_test

// Integration tests wiring the self-forecasting engine to a real f2db
// engine, as the daemons do. They live in an external test package: sibyl
// itself must stay free of f2db imports (the tiers attach it through their
// one-method telemetry interfaces), and these tests would otherwise create
// the cycle the design avoids.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cubefc/internal/core"
	"cubefc/internal/cube"
	"cubefc/internal/f2db"
	"cubefc/internal/sibyl"
	"cubefc/internal/timeseries"
)

// buildSnapshot builds the twin-test cube (2 products × 4 cities → 2
// regions, 36 seasonal points), runs the advisor, and returns the
// serialized database every engine under test loads — identical starting
// state for twins.
func buildSnapshot(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	loc, err := cube.NewHierarchy("location", []string{"city", "region"},
		[]map[string]string{{"C1": "R1", "C2": "R1", "C3": "R2", "C4": "R2"}})
	if err != nil {
		t.Fatal(err)
	}
	dims := []cube.Dimension{cube.NewDimension("product", "product"), loc}
	var base []cube.BaseSeries
	for _, p := range []string{"P1", "P2"} {
		for _, c := range []string{"C1", "C2", "C3", "C4"} {
			vals := make([]float64, 36)
			level := 30 + 20*rng.Float64()
			for i := range vals {
				season := 1 + 0.25*math.Sin(2*math.Pi*float64(i%4)/4)
				vals[i] = level * season * (1 + 0.05*rng.NormFloat64())
			}
			base = append(base, cube.BaseSeries{Members: []string{p, c}, Series: timeseries.New(vals, 4)})
		}
	}
	g, err := cube.NewGraph(dims, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.Run(g, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src, err := f2db.Open(g, cfg, f2db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f2db.SaveDatabase(&buf, src); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadTwin(t testing.TB, data []byte, opts f2db.Options) *f2db.DB {
	t.Helper()
	db, err := f2db.LoadDatabase(bytes.NewReader(data), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// fullBatch renders one complete insert batch with round-dependent values.
func fullBatch(db *f2db.DB, round int) map[int]float64 {
	ids := db.Graph().BaseIDs()
	out := make(map[int]float64, len(ids))
	for i, id := range ids {
		out[id] = 40 + float64(round)*3 + float64(i)*0.25
	}
	return out
}

// baseQueries renders one forecast template per base pair at the given
// horizon.
func baseQueries(horizon int) []string {
	var qs []string
	for _, p := range []string{"P1", "P2"} {
		for _, c := range []string{"C1", "C2", "C3", "C4"} {
			qs = append(qs, fmt.Sprintf(
				"SELECT time, SUM(m) FROM facts WHERE product = '%s' AND city = '%s' AS OF now() + '%d steps'",
				p, c, horizon))
		}
	}
	return qs
}

// TestSelfTuningResultInvariance is the guardrail for every actuator: a
// fully self-tuned engine (telemetry, pre-warming, trough re-estimation,
// adaptive cache sizing) must return bit-identical results to an untuned
// twin fed the same inserts and queries. Each time point inserts one
// batch, ticks the tuned side's control loop (eager trough work and
// pre-warming run here, before any real query), then queries every
// template on both engines and compares exactly. Every template is
// queried in every inter-advance window, so lazy re-estimation on the
// untuned side fits at the same series state the tuned side's eager
// re-fits used. Run with -race this also stress-tests the telemetry hook
// against concurrent actuation.
func TestSelfTuningResultInvariance(t *testing.T) {
	data := buildSnapshot(t)
	opts := f2db.Options{Strategy: f2db.TimeBased{Every: 2}, Stripes: 4}
	tuned := loadTwin(t, data, opts)
	plain := loadTwin(t, data, opts)

	sib := sibyl.New(sibyl.Options{Season: 4, MinHistory: 2})
	sib.Attach(
		&sibyl.Prewarm{Run: func(sql string) error {
			_, err := tuned.Query(sql)
			return err
		}},
		&sibyl.TroughWork{Run: func() { tuned.ReestimateInvalid() }, MinGap: 1},
		&sibyl.CacheSizer{
			Apply: func(n int) { tuned.SetPlanCacheCapacity(n) },
			Min:   4, Max: 512, Current: 256,
		},
		&sibyl.CacheSizer{
			Apply: func(n int) { tuned.SetForecastCacheCapacity(n) },
			Min:   8, Max: 4096, PerTemplate: 4, Current: 4096,
		},
	)
	tuned.SetTelemetry(sib)

	templates := append(baseQueries(1),
		"SELECT time, SUM(m) FROM facts WHERE region = 'R1' AS OF now() + '2 steps'",
		"SELECT time, SUM(m) FROM facts WHERE region = 'R2' AS OF now() + '2 steps'",
		"SELECT time, SUM(m) FROM facts WHERE product = 'P1'",
		"SELECT time, SUM(m), AVG(m) FROM facts WHERE product = 'P2' GROUP BY time, city",
	)
	for tp := 0; tp < 12; tp++ {
		batch := fullBatch(tuned, tp)
		if err := tuned.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := plain.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		// Tick before the real queries: trough re-estimation and
		// pre-warming act on the freshly advanced state, exactly where a
		// wrong actuator would diverge the engines.
		sib.Tick()
		// Oscillating volume so the aggregate model predicts real troughs.
		reps := 1
		if tp%4 < 2 {
			reps = 4
		}
		for _, q := range templates {
			for r := 0; r < reps; r++ {
				got, err := tuned.Query(q)
				if err != nil {
					t.Fatalf("tp %d %q: %v", tp, q, err)
				}
				want, err := plain.Query(q)
				if err != nil {
					t.Fatalf("tp %d %q (plain): %v", tp, q, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("tp %d: self-tuned result diverged for %q:\n tuned: %+v\n plain: %+v",
						tp, q, got, want)
				}
			}
		}
	}
	m := sib.Metrics()
	if m.Buckets.Load() != 12 || m.Observed.Load() == 0 {
		t.Fatalf("control loop did not run: %s", m.StatsLine())
	}
	if m.TroughRuns.Load() == 0 {
		t.Fatal("no trough maintenance ran; the invariance test exercised nothing")
	}
	if m.Resizes.Load() == 0 {
		t.Fatal("no cache resize applied; the invariance test exercised nothing")
	}
}

// TestSpikeOnsetHitRate measures what pre-warming buys at spike onset. A
// 4-phase workload cycles disjoint template sets; every time point inserts
// a full batch (bumping the epoch and invalidating every memoized
// forecast), so the first query of each newly-active template misses the
// forecast memo — unless the self-tuner predicted the phase change and
// re-warmed those templates right after the insert. The tuned engine must
// convert at least 1.5x as many spike-onset first queries into memo hits
// as the untuned control (the BENCH_f2db.json "selftune" scenario).
func TestSpikeOnsetHitRate(t *testing.T) {
	data := buildSnapshot(t)
	opts := f2db.Options{Stripes: 4} // Strategy Never: pure caching, no refit noise
	tuned := loadTwin(t, data, opts)
	control := loadTwin(t, data, opts)

	const phases = 4
	all := append(baseQueries(1), baseQueries(2)...) // 16 templates
	phase := func(p int) []string { return all[p*4 : (p+1)*4] }

	sib := sibyl.New(sibyl.Options{Season: phases, MinHistory: 2})
	sib.Attach(&sibyl.Prewarm{Run: func(sql string) error {
		_, err := tuned.Query(sql)
		return err
	}})
	tuned.SetTelemetry(sib)

	onsetHits := func(db *f2db.DB, q string) bool {
		before := db.Metrics().ForecastCacheHits
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
		return db.Metrics().ForecastCacheHits > before
	}

	const warmup, measure = 3 * phases, 4 * phases
	tunedHits, controlHits, onsets := 0, 0, 0
	for tp := 0; tp < warmup+measure; tp++ {
		batch := fullBatch(tuned, tp)
		if err := tuned.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := control.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		// The control loop runs after the insert: it closed the bucket
		// holding phase(tp-1)'s counts, so a seasonal model predicts
		// phase(tp)'s templates to spike next and pre-warms them against
		// the fresh epoch.
		sib.Tick()
		for _, q := range phase(tp % phases) {
			if tp >= warmup {
				onsets++
				if onsetHits(tuned, q) {
					tunedHits++
				}
				if onsetHits(control, q) {
					controlHits++
				}
			} else {
				if _, err := tuned.Query(q); err != nil {
					t.Fatal(err)
				}
				if _, err := control.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			// Repeat queries keep the template's arrival rate above the
			// spike thresholds (and hit the memo on both sides).
			for r := 0; r < 2; r++ {
				if _, err := tuned.Query(q); err != nil {
					t.Fatal(err)
				}
				if _, err := control.Query(q); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	t.Logf("spike-onset memo hits: tuned %d/%d, control %d/%d (prewarms=%d spikes=%d)",
		tunedHits, onsets, controlHits, onsets,
		sib.Metrics().Prewarms.Load(), sib.Metrics().Spikes.Load())
	if sib.Metrics().Prewarms.Load() == 0 {
		t.Fatal("no pre-warm ran; the workload never tripped the spike classifier")
	}
	if float64(tunedHits) < 1.5*math.Max(float64(controlHits), 1) {
		t.Fatalf("spike-onset hit rate %d/%d not >= 1.5x control %d/%d",
			tunedHits, onsets, controlHits, onsets)
	}
}
