// Package sibyl is the self-forecasting control plane: it points the
// engine's own estimator stack (internal/forecast, warm-started through
// internal/optimize) at the engine's workload. Query arrivals are counted
// per normalized SQL template (the same f2db.NormalizeSQL key the plan
// cache and the coordinator's read cache use) into fixed-width time
// buckets; one warm-started SES or Holt-Winters model per hot template —
// plus one aggregate-QPS model — forecasts the next buckets; predictions
// are turned into actions (cache pre-warming, trough-scheduled
// maintenance, adaptive cache sizing) by pluggable Actuators.
//
// The design splits into a lock-free ingest path and a single-threaded
// control loop:
//
//   - ObserveTemplate is the telemetry hook on the query path. Known
//     templates cost one sync.Map load plus two atomic adds; only the
//     first arrival of a new template takes the registration mutex.
//   - Tick closes the current bucket: it rolls per-template counters into
//     bounded histories, decays EWMA rates, re-fits the models (warm
//     started from the previous optimum), classifies spikes and troughs,
//     and dispatches the resulting Prediction to the attached actuators
//     outside the engine mutex. Tick is exported so tests drive the clock
//     deterministically; Start runs a production ticker at the bucket
//     width (the ticker is the bucket clock — sibyl never reads wall time
//     itself).
//
// The package deliberately has no dependency on internal/f2db or
// internal/coord: both attach it through their own one-method telemetry
// interfaces, which *Engine satisfies structurally.
package sibyl

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cubefc/internal/forecast"
	"cubefc/internal/timeseries"
)

// Options configures the self-forecasting engine. The zero value is
// usable: every field has a documented default.
type Options struct {
	// Bucket is the telemetry bucket width (and the Start ticker period).
	// Default 1s.
	Bucket time.Duration
	// Horizon is the number of future buckets forecast each tick.
	// Default 1.
	Horizon int
	// MaxTemplates bounds the template table. When full, a new template
	// may replace the coldest tracked one (if that one's rate has decayed
	// below one arrival per bucket); otherwise the newcomer is dropped
	// and only counted in the aggregate. Default 512.
	MaxTemplates int
	// Window bounds the per-template (and aggregate) bucket history the
	// models are fitted on. Default 128.
	Window int
	// Season, when > 1, fits seasonal Holt-Winters with that period (in
	// buckets) once a template has two full seasons of history; shorter
	// histories and Season <= 1 use simple exponential smoothing.
	Season int
	// HalfLife is the EWMA rate half-life in buckets. Default 8.
	HalfLife float64
	// MinHistory is the number of closed buckets required before a
	// template gets a model (its EWMA rate serves as the prediction
	// until then). Default 4.
	MinHistory int
	// SpikeFactor and MinSpikeRate classify spikes: a template spikes
	// when its next-bucket forecast is at least SpikeFactor times its
	// current EWMA rate and at least MinSpikeRate arrivals. Defaults 2
	// and 1.
	SpikeFactor  float64
	MinSpikeRate float64
	// TroughFactor classifies troughs on the aggregate: a trough is
	// predicted when the aggregate next-bucket forecast is at most
	// TroughFactor times the aggregate EWMA rate. Default 0.5.
	TroughFactor float64
	// EvictBelow is the EWMA rate below which a template old enough to
	// have MinHistory closed buckets is evicted from the table.
	// Default 1/64.
	EvictBelow float64
	// Logf, when non-nil, receives one line per actuation decision.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Bucket <= 0 {
		o.Bucket = time.Second
	}
	if o.Horizon <= 0 {
		o.Horizon = 1
	}
	if o.MaxTemplates <= 0 {
		o.MaxTemplates = 512
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.HalfLife <= 0 {
		o.HalfLife = 8
	}
	if o.MinHistory <= 0 {
		o.MinHistory = 4
	}
	if o.SpikeFactor <= 0 {
		o.SpikeFactor = 2
	}
	if o.MinSpikeRate <= 0 {
		o.MinSpikeRate = 1
	}
	if o.TroughFactor <= 0 {
		o.TroughFactor = 0.5
	}
	if o.EvictBelow <= 0 {
		o.EvictBelow = 1.0 / 64
	}
	return o
}

// template is one tracked workload template. cur is the open bucket's
// arrival counter (lock-free); everything else belongs to the control
// loop and is guarded by Engine.mu.
type template struct {
	key string
	cur atomic.Int64

	rate  float64 // EWMA arrivals per bucket
	hist  []float64
	seen  int // closed buckets since registration
	model forecast.Model
	pred  []float64 // last forecast for buckets +1..+Horizon, nil if none
}

// Engine is the self-forecasting engine. Create with New, feed with
// ObserveTemplate, advance with Tick (or Start a production ticker).
type Engine struct {
	opts Options
	met  Metrics

	templates sync.Map // template key -> *template

	mu   sync.Mutex
	list []*template // registration order; iteration domain for Tick
	acts []Actuator

	aggHist  []float64
	aggRate  float64
	aggSeen  int
	aggModel forecast.Model
	aggPred  []float64
	lastObs  int64 // Observed at the previous rollover
	bucket   int64 // closed buckets so far

	stop chan struct{}
	done chan struct{}
}

// New returns an engine with no attached actuators.
func New(opts Options) *Engine {
	return &Engine{opts: opts.withDefaults()}
}

// Attach adds actuators to run after each Tick, in order. Actuators run
// on the control-loop goroutine only, outside the engine mutex.
func (e *Engine) Attach(acts ...Actuator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.acts = append(e.acts, acts...)
}

// Metrics returns the engine's live counters.
func (e *Engine) Metrics() *Metrics { return &e.met }

// Bucket returns the configured bucket width.
func (e *Engine) Bucket() time.Duration { return e.opts.Bucket }

// ObserveTemplate records one arrival of the given normalized query
// template into the open bucket. It is safe for concurrent use and is
// lock-free for templates already in the table; it satisfies the
// one-method telemetry interfaces of both serving tiers.
func (e *Engine) ObserveTemplate(key string) {
	e.met.Observed.Add(1)
	if v, ok := e.templates.Load(key); ok {
		v.(*template).cur.Add(1)
		return
	}
	e.register(key)
}

// register is the slow path for a template's first arrival.
func (e *Engine) register(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.templates.Load(key); ok { // raced with another register
		v.(*template).cur.Add(1)
		return
	}
	if len(e.list) >= e.opts.MaxTemplates {
		// Replace the coldest template only if it has genuinely gone
		// cold; otherwise the newcomer is dropped (its arrival still
		// counts in the aggregate).
		victim := -1
		for i, t := range e.list {
			if victim < 0 || t.rate < e.list[victim].rate ||
				(t.rate == e.list[victim].rate && t.key < e.list[victim].key) {
				victim = i
			}
		}
		if victim < 0 || e.list[victim].rate >= 1 {
			e.met.Dropped.Add(1)
			return
		}
		e.templates.Delete(e.list[victim].key)
		e.list = append(e.list[:victim], e.list[victim+1:]...)
		e.met.Evicted.Add(1)
	}
	t := &template{key: key}
	t.cur.Store(1)
	e.templates.Store(key, t)
	e.list = append(e.list, t)
	e.met.Templates.Store(int64(len(e.list)))
}

// Tick closes the current bucket, updates rates and histories, re-fits
// the per-template and aggregate models, classifies spikes and troughs,
// and runs the attached actuators with the resulting Prediction (which
// it also returns). Tick is synchronous and deterministic given the
// observation sequence; tests call it directly as a fake clock.
func (e *Engine) Tick() Prediction {
	e.mu.Lock()
	e.bucket++
	e.met.Buckets.Add(1)
	alpha := 1 - math.Pow(0.5, 1/e.opts.HalfLife)

	// Aggregate QPS stream: delta of the global observation counter.
	obs := e.met.Observed.Load()
	aggCount := float64(obs - e.lastObs)
	e.lastObs = obs
	if e.aggSeen == 0 {
		e.aggRate = aggCount
	} else {
		e.aggRate += alpha * (aggCount - e.aggRate)
	}
	e.aggSeen++
	e.aggHist = appendBounded(e.aggHist, aggCount, e.opts.Window)
	e.aggModel, e.aggPred = e.refit(e.aggModel, e.aggHist, e.aggSeen)

	// Per-template rollover, decay eviction, and re-fit.
	keep := e.list[:0]
	for _, t := range e.list {
		c := float64(t.cur.Swap(0))
		if t.seen == 0 {
			t.rate = c
		} else {
			t.rate += alpha * (c - t.rate)
		}
		t.seen++
		t.hist = appendBounded(t.hist, c, e.opts.Window)
		if t.seen >= e.opts.MinHistory && t.rate < e.opts.EvictBelow {
			e.templates.Delete(t.key)
			e.met.Evicted.Add(1)
			continue
		}
		t.model, t.pred = e.refit(t.model, t.hist, t.seen)
		keep = append(keep, t)
	}
	for i := len(keep); i < len(e.list); i++ {
		e.list[i] = nil
	}
	e.list = keep
	e.met.Templates.Store(int64(len(e.list)))

	p := e.classifyLocked()
	acts := e.acts
	e.mu.Unlock()

	if p.Trough {
		e.met.Troughs.Add(1)
	}
	for _, tf := range p.Templates {
		if tf.Spike {
			e.met.Spikes.Add(1)
		}
	}
	for _, a := range acts {
		a.Act(p, &e.met)
	}
	return p
}

// refit re-estimates one model over hist, warm-started from the previous
// fit when the model family is unchanged. On fit failure the previous
// model is kept and the prediction is nil (callers fall back to the EWMA
// rate).
func (e *Engine) refit(prev forecast.Model, hist []float64, seen int) (forecast.Model, []float64) {
	if seen < e.opts.MinHistory || len(hist) < 2 {
		return prev, nil
	}
	period := 1
	if e.opts.Season > 1 && len(hist) >= 2*e.opts.Season {
		period = e.opts.Season
	}
	var m forecast.Model
	if period > 1 {
		m = forecast.NewHoltWinters(period, forecast.Additive)
	} else {
		m = forecast.NewSES()
	}
	if prev != nil && prev.Fitted() && prev.Name() == m.Name() {
		if pw, ok := prev.(forecast.WarmStarter); ok {
			if mw, ok := m.(forecast.WarmStarter); ok {
				mw.WarmStart(pw.Params())
			}
		}
	}
	e.met.Refits.Add(1)
	if err := m.Fit(timeseries.New(hist, period)); err != nil {
		e.met.FitErrors.Add(1)
		return prev, nil
	}
	pred := m.Forecast(e.opts.Horizon)
	for i := range pred {
		if math.IsNaN(pred[i]) || pred[i] < 0 {
			pred[i] = 0
		}
	}
	return m, pred
}

// classifyLocked builds the Prediction snapshot. Caller holds e.mu.
func (e *Engine) classifyLocked() Prediction {
	p := Prediction{
		Bucket:  e.bucket,
		AggRate: e.aggRate,
	}
	p.AggPredicted = e.aggRate
	if len(e.aggPred) > 0 {
		p.AggPredicted = e.aggPred[0]
	}
	p.Trough = p.AggPredicted <= e.opts.TroughFactor*p.AggRate
	p.Templates = make([]TemplateForecast, 0, len(e.list))
	for _, t := range e.list {
		tf := TemplateForecast{Key: t.key, Rate: t.rate, Predicted: t.rate}
		if len(t.pred) > 0 {
			tf.Predicted = t.pred[0]
		}
		tf.Spike = len(t.pred) > 0 &&
			tf.Predicted >= e.opts.MinSpikeRate &&
			tf.Predicted >= e.opts.SpikeFactor*math.Max(t.rate, 1e-9)
		if math.Max(tf.Predicted, tf.Rate) >= 1 {
			p.WorkingSet++
		}
		p.Templates = append(p.Templates, tf)
	}
	sort.Slice(p.Templates, func(i, j int) bool {
		a, b := p.Templates[i], p.Templates[j]
		if a.Predicted != b.Predicted {
			return a.Predicted > b.Predicted
		}
		return a.Key < b.Key
	})
	return p
}

// Start launches the production control loop: one Tick per bucket width.
// It is a no-op if the loop is already running.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go e.run(e.stop, e.done)
}

func (e *Engine) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(e.opts.Bucket)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			e.Tick()
		}
	}
}

// Stop halts the control loop started by Start and waits for the
// in-flight Tick, if any, to finish. No-op when not running.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// appendBounded appends x to h keeping at most w trailing elements,
// shifting in place so the backing array is reused.
func appendBounded(h []float64, x float64, w int) []float64 {
	h = append(h, x)
	if len(h) > w {
		copy(h, h[len(h)-w:])
		h = h[:w]
	}
	return h
}
