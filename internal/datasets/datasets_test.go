package datasets

import (
	"math"
	"math/rand"
	"testing"
)

func TestTourismShape(t *testing.T) {
	ds := Tourism(1)
	if len(ds.Base) != 32 {
		t.Fatalf("tourism base series = %d, want 32 (4 purposes × 8 states)", len(ds.Base))
	}
	if ds.Period != 4 {
		t.Fatalf("tourism period = %d, want 4 (quarterly)", ds.Period)
	}
	for _, b := range ds.Base {
		if b.Series.Len() != 32 {
			t.Fatalf("tourism series length = %d, want 32 (2004-2011 quarterly)", b.Series.Len())
		}
	}
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// (4 purposes + ALL) × (8 states + ALL) = 45 nodes, as in the paper's
	// description of the data set.
	if g.NumNodes() != 45 {
		t.Fatalf("tourism graph nodes = %d, want 45", g.NumNodes())
	}
}

func TestSalesShape(t *testing.T) {
	ds := Sales(1)
	if len(ds.Base) != 27 {
		t.Fatalf("sales base series = %d, want 27", len(ds.Base))
	}
	if ds.Period != 12 {
		t.Fatalf("sales period = %d, want 12 (monthly)", ds.Period)
	}
	for _, b := range ds.Base {
		if b.Series.Len() != 72 {
			t.Fatalf("sales series length = %d, want 72 (2004-2009 monthly)", b.Series.Len())
		}
	}
}

func TestEnergyShape(t *testing.T) {
	ds := Energy(1, EnergyOptions{})
	if len(ds.Base) != 86 {
		t.Fatalf("energy base series = %d, want 86 customers", len(ds.Base))
	}
	if ds.Period != 24 {
		t.Fatalf("energy period = %d, want 24 (hourly/daily season)", ds.Period)
	}
	if ds.Base[0].Series.Len() != 240*24 {
		t.Fatalf("energy length = %d, want %d", ds.Base[0].Series.Len(), 240*24)
	}
	// Customers are grouped into districts via the hierarchy.
	if len(ds.Dims) != 1 || len(ds.Dims[0].Levels) != 2 {
		t.Fatal("energy should have a customer → district hierarchy")
	}
}

func TestEnergyScaled(t *testing.T) {
	ds := Energy(1, EnergyOptions{Customers: 10, Days: 5})
	if len(ds.Base) != 10 || ds.Base[0].Series.Len() != 120 {
		t.Fatalf("scaled energy shape wrong: %d series × %d", len(ds.Base), ds.Base[0].Series.Len())
	}
}

func TestEnergyBaseNoisierThanAggregate(t *testing.T) {
	// The paper's key property: base data is noisy, aggregates are
	// smooth. Compare the coefficient of variation of a base series with
	// the top aggregate.
	ds := Energy(1, EnergyOptions{Customers: 20, Days: 20})
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	base := g.Node(g.BaseIDs[0]).Series
	top := g.Top().Series
	cvBase := base.Std() / base.Mean()
	cvTop := top.Std() / top.Mean()
	if cvTop >= cvBase {
		t.Fatalf("aggregate CV %v should be below base CV %v", cvTop, cvBase)
	}
}

func TestGenLevelsRule(t *testing.T) {
	cases := map[int]int{
		10: 3, 999: 3,
		1_000: 4, 9_999: 4,
		10_000: 5, 99_999: 5,
		100_000: 6, 500_000: 6,
	}
	for x, want := range cases {
		if got := GenLevels(x); got != want {
			t.Errorf("GenLevels(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestGenXShape(t *testing.T) {
	ds := GenX(1, 100, GenXOptions{})
	if len(ds.Base) != 100 {
		t.Fatalf("genx base = %d", len(ds.Base))
	}
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// 3 levels: base (100) + one named level (~10) + ALL.
	if len(ds.Dims[0].Levels) != 2 {
		t.Fatalf("gen100 named levels = %d, want 2", len(ds.Dims[0].Levels))
	}
	if g.NumNodes() <= 100 {
		t.Fatal("graph must contain aggregation levels")
	}
	if g.NumNodes() > 100+20+1 {
		t.Fatalf("graph too large: %d", g.NumNodes())
	}
}

func TestGenXLevelsGrow(t *testing.T) {
	for _, x := range []int{50, 1_500, 12_000} {
		ds := GenX(1, x, GenXOptions{Length: 30})
		want := GenLevels(x) - 1
		if len(ds.Dims[0].Levels) != want {
			t.Fatalf("gen%d named levels = %d, want %d", x, len(ds.Dims[0].Levels), want)
		}
	}
}

func TestGenXDeterministicPerSeed(t *testing.T) {
	a := GenX(7, 50, GenXOptions{})
	b := GenX(7, 50, GenXOptions{})
	for i := range a.Base {
		for j := range a.Base[i].Series.Values {
			if a.Base[i].Series.Values[j] != b.Base[i].Series.Values[j] {
				t.Fatal("GenX not deterministic per seed")
			}
		}
	}
	c := GenX(8, 50, GenXOptions{})
	same := true
	for j := range a.Base[0].Series.Values {
		if a.Base[0].Series.Values[j] != c.Base[0].Series.Values[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenXNonNegative(t *testing.T) {
	ds := GenX(3, 200, GenXOptions{})
	for _, b := range ds.Base {
		for _, v := range b.Series.Values {
			if v < 0 {
				t.Fatal("generated measure below zero")
			}
		}
	}
}

func TestGenXIndependentOption(t *testing.T) {
	dep := GenX(1, 40, GenXOptions{})
	ind := GenX(1, 40, GenXOptions{Independent: true})
	// With group sharing, siblings correlate strongly; without, less so.
	corr := func(ds *Dataset) float64 {
		a := ds.Base[0].Series.Values
		b := ds.Base[1].Series.Values
		var ma, mb float64
		for i := range a {
			ma += a[i]
			mb += b[i]
		}
		ma /= float64(len(a))
		mb /= float64(len(b))
		var sab, saa, sbb float64
		for i := range a {
			sab += (a[i] - ma) * (b[i] - mb)
			saa += (a[i] - ma) * (a[i] - ma)
			sbb += (b[i] - mb) * (b[i] - mb)
		}
		return sab / math.Sqrt(saa*sbb)
	}
	if corr(dep) <= corr(ind) {
		t.Fatalf("grouped correlation %v should exceed independent %v", corr(dep), corr(ind))
	}
}

func TestSARIMAProcessLengthAndDeterminism(t *testing.T) {
	p := &SARIMAProcess{AR: []float64{0.5}, Period: 12, Sigma: 1, Level: 10}
	a := p.Generate(rand.New(rand.NewSource(1)), 40)
	b := p.Generate(rand.New(rand.NewSource(1)), 40)
	if len(a) != 40 {
		t.Fatalf("length = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SARIMA generation not deterministic")
		}
	}
}

func TestSARIMASeasonalIntegrationCreatesSeasonality(t *testing.T) {
	p := &SARIMAProcess{SMA: []float64{-0.5}, SD: 1, Period: 6, Sigma: 1, Level: 100}
	vals := p.Generate(rand.New(rand.NewSource(2)), 120)
	// Seasonal ACF at the period should dominate neighboring lags.
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	acf := func(lag int) float64 {
		var num, den float64
		for i := range vals {
			den += (vals[i] - mean) * (vals[i] - mean)
			if i+lag < len(vals) {
				num += (vals[i] - mean) * (vals[i+lag] - mean)
			}
		}
		return num / den
	}
	if acf(6) <= acf(4) {
		t.Fatalf("seasonal ACF(6)=%v should exceed ACF(4)=%v", acf(6), acf(4))
	}
}

func TestExpandSeasonalAR(t *testing.T) {
	// (1-0.5B)(1-0.3B^4): combined AR coefficients at lags 1,4,5.
	got := expandSeasonal([]float64{0.5}, []float64{0.3}, 4, false)
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[3]-0.3) > 1e-12 || math.Abs(got[4]+0.15) > 1e-12 {
		t.Fatalf("expandSeasonal AR = %v", got)
	}
}

func TestTourismSiblingCorrelation(t *testing.T) {
	// Same-purpose series across states must share their seasonal shape
	// (this is what the advisor exploits).
	ds := Tourism(1)
	a := ds.Base[0].Series.Values // holiday, NSW
	b := ds.Base[1].Series.Values // holiday, VIC
	var sab float64
	var saa, sbb float64
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	for i := range a {
		sab += (a[i] - ma) * (b[i] - mb)
		saa += (a[i] - ma) * (a[i] - ma)
		sbb += (b[i] - mb) * (b[i] - mb)
	}
	if r := sab / math.Sqrt(saa*sbb); r < 0.5 {
		t.Fatalf("sibling correlation = %v, want strong", r)
	}
}
