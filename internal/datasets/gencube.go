package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"cubefc/internal/cube"
	"cubefc/internal/timeseries"
)

// CubeGenOptions parameterizes the benchmark-grade synthetic cube
// generator: number of dimensions, per-level member cardinality and the
// seasonality mix of the base series. Unlike GenX (the paper's single
// deep hierarchy), GenCube spans several dimensions, so the node count —
// the product over dimensions of (members across levels + ALL) — grows
// multiplicatively while the base count stays the product of the finest
// cardinalities; exactly the regime where lazy materialization and
// sampled estimation pay off.
type CubeGenOptions struct {
	// DimCards holds, per dimension, the member count per named level,
	// finest level first and strictly non-increasing (e.g. {{40, 8}, {25,
	// 5}} describes 2 dimensions with 40×25 = 1000 base series). Children
	// are distributed evenly across parents.
	DimCards [][]int
	// Length is the observations per base series (default 48).
	Length int
	// Period is the seasonal period of the seasonal component (default 12).
	Period int
	// SeasonalShare is the fraction of base series carrying a seasonal
	// signal; the rest are trend-plus-noise (default 0.7). The mix makes
	// the advisor's model-placement decisions non-trivial: seasonal
	// groups aggregate into cleanly seasonal nodes, mixed groups don't.
	SeasonalShare float64
	// GroupShare blends a per-group shared signal into siblings along the
	// first dimension (default 0.35, as in GenX); 0 disables it.
	GroupShare float64
}

func (o CubeGenOptions) withDefaults() CubeGenOptions {
	if len(o.DimCards) == 0 {
		o.DimCards = [][]int{{20, 4}, {10, 2}}
	}
	if o.Length <= 0 {
		o.Length = 48
	}
	if o.Period <= 0 {
		o.Period = 12
	}
	if o.SeasonalShare <= 0 || o.SeasonalShare > 1 {
		o.SeasonalShare = 0.7
	}
	if o.GroupShare <= 0 {
		o.GroupShare = 0.35
	}
	return o
}

// NumBase returns the number of base series the options describe: the
// product of the finest-level cardinalities.
func (o CubeGenOptions) NumBase() int {
	o = o.withDefaults()
	n := 1
	for _, cards := range o.DimCards {
		n *= cards[0]
	}
	return n
}

// NumNodes returns the total hyper-graph node count the options describe:
// the product over dimensions of (sum of level cardinalities + 1 for ALL).
func (o CubeGenOptions) NumNodes() int {
	o = o.withDefaults()
	n := 1
	for _, cards := range o.DimCards {
		per := 1 // ALL
		for _, c := range cards {
			per += c
		}
		n *= per
	}
	return n
}

// CubeGenForNodes sizes a symmetric CubeGenOptions so the resulting graph
// holds approximately targetNodes nodes across the given number of
// dimensions (two named levels per dimension, fan-out 5). It is the
// BenchmarkAdvisorScale sizing helper: CubeGenForNodes(100_000, 2)
// describes a ~10^5-node cube.
func CubeGenForNodes(targetNodes, dims int) CubeGenOptions {
	if dims < 1 {
		dims = 1
	}
	if targetNodes < 8 {
		targetNodes = 8
	}
	// Per dimension we need (a + ceil(a/5) + 1) ≈ targetNodes^(1/dims),
	// i.e. a ≈ (targetNodes^(1/dims) - 1) / 1.2.
	per := math.Pow(float64(targetNodes), 1/float64(dims))
	a := int(math.Round((per - 1) / 1.2))
	if a < 2 {
		a = 2
	}
	cards := make([][]int, dims)
	for d := range cards {
		up := (a + 4) / 5
		if up < 1 {
			up = 1
		}
		cards[d] = []int{a, up}
	}
	return CubeGenOptions{DimCards: cards}
}

// GenCube generates a multi-dimensional synthetic cube: one hierarchy per
// DimCards entry, base series at the Cartesian product of the finest
// members, values from a seasonal SARIMA process or a trend-plus-noise
// process according to SeasonalShare, with optional shared group structure
// along the first dimension. Generation is deterministic per seed.
func GenCube(seed int64, opts CubeGenOptions) *Dataset {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	dims := make([]cube.Dimension, len(opts.DimCards))
	for d, cards := range opts.DimCards {
		names := make([]string, len(cards))
		for l := range cards {
			names[l] = fmt.Sprintf("d%dl%d", d, l)
		}
		member := func(level, i int) string { return fmt.Sprintf("d%dl%d_%d", d, level, i) }
		maps := make([]map[string]string, len(cards)-1)
		for l := 0; l < len(cards)-1; l++ {
			m := make(map[string]string, cards[l])
			for i := 0; i < cards[l]; i++ {
				p := i * cards[l+1] / cards[l]
				m[member(l, i)] = member(l+1, p)
			}
			maps[l] = m
		}
		dim, err := cube.NewHierarchy(fmt.Sprintf("d%d", d), names, maps)
		if err != nil {
			panic(err) // static construction cannot fail
		}
		dims[d] = dim
	}

	seasonal := &SARIMAProcess{
		AR:     []float64{0.55},
		MA:     []float64{0.2},
		SMA:    []float64{-0.4},
		SD:     1,
		Period: opts.Period,
		Sigma:  6,
		Level:  60,
	}

	// Shared signals per level-1 group of the first dimension; the group
	// of a base series follows its dim-0 member, so siblings aggregate
	// into predictable parents.
	numGroups := 1
	if len(opts.DimCards[0]) > 1 {
		numGroups = opts.DimCards[0][1]
	}
	groupSignal := make([][]float64, numGroups)
	for gid := range groupSignal {
		groupSignal[gid] = seasonal.Generate(rng, opts.Length)
	}

	nBase := opts.NumBase()
	base := make([]cube.BaseSeries, 0, nBase)
	idx := make([]int, len(opts.DimCards))
	for b := 0; b < nBase; b++ {
		members := make([]string, len(opts.DimCards))
		for d, i := range idx {
			members[d] = fmt.Sprintf("d%dl0_%d", d, i)
		}
		gid := 0
		if numGroups > 1 {
			gid = idx[0] * numGroups / opts.DimCards[0][0]
		}
		vals := make([]float64, opts.Length)
		scale := 0.5 + rng.Float64()
		if rng.Float64() < opts.SeasonalShare {
			// Seasonal base: shared group signal plus idiosyncratic noise.
			gs := groupSignal[gid]
			for t := range vals {
				vals[t] = scale * (opts.GroupShare*gs[t] +
					(1-opts.GroupShare)*(seasonal.Level+rng.NormFloat64()*2*seasonal.Sigma))
				if vals[t] < 0 {
					vals[t] = 0
				}
			}
		} else {
			// Non-seasonal base: linear trend plus white noise.
			slope := (rng.Float64() - 0.3) * 2
			for t := range vals {
				vals[t] = scale * (seasonal.Level + slope*float64(t) + rng.NormFloat64()*seasonal.Sigma)
				if vals[t] < 0 {
					vals[t] = 0
				}
			}
		}
		base = append(base, cube.BaseSeries{
			Members: members,
			Series:  timeseries.New(vals, opts.Period),
		})
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < opts.DimCards[d][0] {
				break
			}
			idx[d] = 0
		}
	}
	return &Dataset{
		Name:   fmt.Sprintf("gencube%d", opts.NumNodes()),
		Dims:   dims,
		Base:   base,
		Period: opts.Period,
	}
}
