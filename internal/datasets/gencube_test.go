package datasets

import (
	"math"
	"testing"
)

func TestGenCubeShape(t *testing.T) {
	opts := CubeGenOptions{DimCards: [][]int{{12, 3}, {6, 2}}, Length: 24, Period: 4}
	d := GenCube(1, opts)
	if len(d.Base) != 72 {
		t.Fatalf("base series = %d, want 72", len(d.Base))
	}
	g, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// (12+3+1) × (6+2+1) = 144 nodes.
	if g.NumNodes() != opts.NumNodes() || g.NumNodes() != 144 {
		t.Fatalf("NumNodes = %d, want %d (=144)", g.NumNodes(), opts.NumNodes())
	}
	if len(g.BaseIDs) != opts.NumBase() {
		t.Fatalf("base nodes = %d, want %d", len(g.BaseIDs), opts.NumBase())
	}
	if g.Period != 4 || g.Length != 24 {
		t.Fatalf("period/length = %d/%d", g.Period, g.Length)
	}
	// Lazy construction must agree on the skeleton.
	lg, err := d.LazyGraph()
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumNodes() != g.NumNodes() || lg.TopID != g.TopID {
		t.Fatal("lazy construction disagrees with eager")
	}
	for id := 0; id < g.NumNodes(); id++ {
		if g.KeyOf(id) != lg.KeyOf(id) {
			t.Fatalf("node %d key differs between modes", id)
		}
	}
}

func TestGenCubeDeterministicPerSeed(t *testing.T) {
	opts := CubeGenOptions{DimCards: [][]int{{8, 2}}, Length: 16}
	a, b := GenCube(5, opts), GenCube(5, opts)
	for i := range a.Base {
		for t2, v := range a.Base[i].Series.Values {
			if math.Float64bits(v) != math.Float64bits(b.Base[i].Series.Values[t2]) {
				t.Fatalf("series %d diverges at t=%d", i, t2)
			}
		}
	}
	c := GenCube(6, opts)
	same := true
	for i := range a.Base {
		for t2, v := range a.Base[i].Series.Values {
			if v != c.Base[i].Series.Values[t2] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds must produce different cubes")
	}
}

func TestCubeGenForNodesHitsTarget(t *testing.T) {
	for _, target := range []int{1_000, 10_000, 100_000} {
		opts := CubeGenForNodes(target, 2)
		got := opts.NumNodes()
		ratio := float64(got) / float64(target)
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("CubeGenForNodes(%d, 2) → %d nodes (ratio %.2f)", target, got, ratio)
		}
	}
}
