package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"cubefc/internal/cube"
	"cubefc/internal/timeseries"
)

// Dataset bundles the dimensions and base series of one evaluation data
// set, ready for cube.NewGraph.
type Dataset struct {
	Name   string
	Dims   []cube.Dimension
	Base   []cube.BaseSeries
	Period int
}

// Graph builds the time-series hyper graph of the data set.
func (d *Dataset) Graph() (*cube.Graph, error) {
	return cube.NewGraph(d.Dims, d.Base)
}

// LazyGraph builds the hyper graph in lazy mode (aggregates materialized
// on first access) — the construction for benchmark-scale cubes.
func (d *Dataset) LazyGraph() (*cube.Graph, error) {
	return cube.NewLazyGraph(d.Dims, d.Base)
}

// Tourism generates the synthetic stand-in for the Australian domestic
// tourism data set: 32 base time series along two flat dimensions —
// purpose of visit (holiday, business, visiting, other) and state (8
// states) — with 32 quarterly observations (2004–2011) and quarterly
// seasonality (period 4). Sibling series share seasonal shape (purposes
// have characteristic seasons, states scale them), which is the structure
// hierarchical derivation exploits.
func Tourism(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	purposes := []string{"holiday", "business", "visiting", "other"}
	states := []string{"NSW", "VIC", "QLD", "SA", "WA", "TAS", "NT", "ACT"}
	const n, period = 32, 4

	// Characteristic quarterly pattern per purpose (holiday peaks in Q1,
	// business flat, ...), amplitude per purpose.
	purposeSeason := map[string][]float64{
		"holiday":  {1.35, 0.85, 0.80, 1.00},
		"business": {0.95, 1.05, 1.05, 0.95},
		"visiting": {1.10, 0.90, 0.95, 1.05},
		"other":    {1.00, 1.00, 1.00, 1.00},
	}
	purposeLevel := map[string]float64{"holiday": 120, "business": 80, "visiting": 60, "other": 25}
	stateScale := make(map[string]float64, len(states))
	for i, s := range states {
		stateScale[s] = 1.6 - 0.15*float64(i) // NSW largest … ACT smallest
	}

	dims := []cube.Dimension{
		cube.NewDimension("purpose", "purpose"),
		cube.NewDimension("state", "state"),
	}
	var base []cube.BaseSeries
	for _, p := range purposes {
		for _, st := range states {
			trend := (rng.Float64() - 0.3) * 0.4 // mostly slight growth
			level := purposeLevel[p] * stateScale[st] * (0.85 + 0.3*rng.Float64())
			vals := make([]float64, n)
			for t := 0; t < n; t++ {
				season := purposeSeason[p][t%period]
				noise := 1 + rng.NormFloat64()*0.06
				v := (level + trend*float64(t)) * season * noise
				if v < 0 {
					v = 0
				}
				vals[t] = v
			}
			base = append(base, cube.BaseSeries{
				Members: []string{p, st},
				Series:  timeseries.New(vals, period),
			})
		}
	}
	return &Dataset{Name: "tourism", Dims: dims, Base: base, Period: period}
}

// Sales generates the synthetic stand-in for the market-research sales
// excerpt: 27 base series along product (9) and country (3) dimensions in
// monthly resolution 2004–2009 (72 observations, period 12). Product
// families share yearly seasonality; occasional promotion spikes add the
// base-level noise that makes higher aggregation levels easier to forecast.
func Sales(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	products := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9"}
	countries := []string{"DE", "FR", "UK"}
	const n, period = 72, 12

	dims := []cube.Dimension{
		cube.NewDimension("product", "product"),
		cube.NewDimension("country", "country"),
	}
	countryScale := map[string]float64{"DE": 1.4, "FR": 1.0, "UK": 0.8}
	var base []cube.BaseSeries
	for pi, p := range products {
		// Yearly pattern per product: phase-shifted sinusoid plus a
		// December uplift for consumer products.
		phase := float64(pi) * 0.7
		amp := 0.15 + 0.1*rng.Float64()
		level := 40 + 25*rng.Float64()
		trend := (rng.Float64() - 0.4) * 0.25
		for _, c := range countries {
			scale := countryScale[c] * (0.9 + 0.2*rng.Float64())
			vals := make([]float64, n)
			for t := 0; t < n; t++ {
				season := 1 + amp*math.Sin(2*math.Pi*float64(t%period)/float64(period)+phase)
				if t%period == 11 && pi%2 == 0 {
					season += 0.25 // holiday-season uplift
				}
				noise := 1 + rng.NormFloat64()*0.08
				v := (level + trend*float64(t)) * scale * season * noise
				if rng.Float64() < 0.03 {
					v *= 1.5 // promotion spike
				}
				if v < 0 {
					v = 0
				}
				vals[t] = v
			}
			base = append(base, cube.BaseSeries{
				Members: []string{p, c},
				Series:  timeseries.New(vals, period),
			})
		}
	}
	return &Dataset{Name: "sales", Dims: dims, Base: base, Period: period}
}

// EnergyOptions sizes the Energy generator; the zero value matches the
// paper (86 customers, ~8 months of hourly data).
type EnergyOptions struct {
	Customers int // default 86
	Days      int // default 240 (Nov 2009 – Jun 2010)
}

// Energy generates the synthetic stand-in for the EnBW MeRegio energy-
// demand data set: hourly consumption of 86 customers grouped into
// districts (a customer → district functional dependency), daily
// seasonality (period 24) and strongly noisy base-level series — the
// property that makes all classical approaches perform alike on this set
// (Figure 7c).
func Energy(seed int64, opts EnergyOptions) *Dataset {
	if opts.Customers <= 0 {
		opts.Customers = 86
	}
	if opts.Days <= 0 {
		opts.Days = 240
	}
	rng := rand.New(rand.NewSource(seed))
	const period = 24
	n := opts.Days * period

	// Group customers into districts of ~10.
	numDistricts := (opts.Customers + 9) / 10
	parents := make(map[string]string, opts.Customers)
	customers := make([]string, opts.Customers)
	for i := range customers {
		customers[i] = fmt.Sprintf("cust%02d", i+1)
		parents[customers[i]] = fmt.Sprintf("district%d", i%numDistricts+1)
	}
	dim, err := cube.NewHierarchy("customer", []string{"customer", "district"}, []map[string]string{parents})
	if err != nil {
		panic(err) // static construction cannot fail
	}

	// Shared daily load shape: night valley, morning and evening peaks.
	shape := make([]float64, period)
	for h := 0; h < period; h++ {
		shape[h] = 0.6 +
			0.5*math.Exp(-squared(float64(h)-8)/8) +
			0.8*math.Exp(-squared(float64(h)-19)/10)
	}

	var base []cube.BaseSeries
	for i := range customers {
		level := 1.5 + 3*rng.Float64()
		noiseAmp := 0.35 + 0.25*rng.Float64() // strongly noisy base data
		weekendDip := 0.75 + 0.2*rng.Float64()
		vals := make([]float64, n)
		for t := 0; t < n; t++ {
			day := t / period
			hour := t % period
			v := level * shape[hour]
			if day%7 >= 5 {
				v *= weekendDip
			}
			v *= 1 + rng.NormFloat64()*noiseAmp
			if rng.Float64() < 0.01 {
				v += level * 2 // appliance burst
			}
			if v < 0 {
				v = 0
			}
			vals[t] = v
		}
		base = append(base, cube.BaseSeries{
			Members: []string{customers[i]},
			Series:  timeseries.New(vals, period),
		})
	}
	return &Dataset{Name: "energy", Dims: []cube.Dimension{dim}, Base: base, Period: period}
}

func squared(x float64) float64 { return x * x }

// GenLevels implements the level rule of Section VI-A: "three levels if
// X < 1,000, four levels for 1,000 <= X < 10,000, five levels for
// 10,000 <= X < 100,000 and six levels for X >= 100,000".
func GenLevels(x int) int {
	switch {
	case x < 1_000:
		return 3
	case x < 10_000:
		return 4
	case x < 100_000:
		return 5
	default:
		return 6
	}
}

// GenXOptions sizes the GenX generator.
type GenXOptions struct {
	// Length is the observations per series (default 48).
	Length int
	// Period is the seasonal period of the SARIMA process (default 12).
	Period int
	// GroupShare blends a per-parent-group SARIMA component into each
	// base series (default 0.35): siblings under the same level-1 parent
	// share a common signal, as aggregates of real processes do, which
	// is what derivation schemes exploit. Set to 0 for fully independent
	// series.
	GroupShare float64
	// Independent forces GroupShare to zero.
	Independent bool
}

// GenX generates the synthetic data set of the paper: x base time series
// from a SARIMA process, summed up a hierarchy whose depth follows
// GenLevels. The hierarchy is a single dimension with GenLevels(x)-1 named
// levels plus ALL, children distributed evenly across parents.
func GenX(seed int64, x int, opts GenXOptions) *Dataset {
	if x < 1 {
		x = 1
	}
	if opts.Length <= 0 {
		opts.Length = 48
	}
	if opts.Period <= 0 {
		opts.Period = 12
	}
	rng := rand.New(rand.NewSource(seed))
	levels := GenLevels(x)
	named := levels - 1 // named hierarchy levels; top of the graph is ALL

	// Member counts per named level: geometric decay so that the last
	// named level has about f members with f = x^(1/(levels-1)).
	counts := make([]int, named)
	counts[0] = x
	f := math.Pow(float64(x), 1/float64(levels-1))
	for l := 1; l < named; l++ {
		c := int(math.Round(float64(counts[l-1]) / f))
		if c < 1 {
			c = 1
		}
		if c >= counts[l-1] {
			c = counts[l-1]
		}
		counts[l] = c
	}

	levelNames := make([]string, named)
	for l := range levelNames {
		levelNames[l] = fmt.Sprintf("l%d", l)
	}
	memberName := func(level, i int) string { return fmt.Sprintf("l%d_%d", level, i) }
	parentMaps := make([]map[string]string, named-1)
	for l := 0; l < named-1; l++ {
		m := make(map[string]string, counts[l])
		for i := 0; i < counts[l]; i++ {
			// Distribute children evenly across the parents.
			p := i * counts[l+1] / counts[l]
			m[memberName(l, i)] = memberName(l+1, p)
		}
		parentMaps[l] = m
	}
	dim, err := cube.NewHierarchy("gen", levelNames, parentMaps)
	if err != nil {
		panic(err) // static construction cannot fail
	}

	share := opts.GroupShare
	if share <= 0 {
		share = 0.35
	}
	if opts.Independent {
		share = 0
	}

	proc := &SARIMAProcess{
		AR:     []float64{0.55},
		MA:     []float64{0.2},
		SMA:    []float64{-0.4},
		SD:     1,
		Period: opts.Period,
		Sigma:  6,
		Level:  60,
	}
	// One shared SARIMA signal per level-1 parent group.
	numGroups := 1
	if named > 1 {
		numGroups = counts[1]
	}
	groupSignal := make([][]float64, numGroups)
	if share > 0 {
		for gid := range groupSignal {
			groupSignal[gid] = proc.Generate(rng, opts.Length)
		}
	}
	groupOf := func(i int) int {
		if named > 1 {
			return i * counts[1] / counts[0]
		}
		return 0
	}

	base := make([]cube.BaseSeries, x)
	for i := 0; i < x; i++ {
		var vals []float64
		if share > 0 {
			// Shared group structure plus unforecastable idiosyncratic
			// white noise: the regime in which derivation schemes pay
			// off (a base node's own model can only chase the noise).
			gs := groupSignal[groupOf(i)]
			scale := 0.5 + rng.Float64()
			vals = make([]float64, opts.Length)
			for t := range vals {
				vals[t] = scale * (share*gs[t] + (1-share)*(proc.Level+rng.NormFloat64()*3*proc.Sigma))
				if vals[t] < 0 {
					vals[t] = 0
				}
			}
		} else {
			vals = proc.Generate(rng, opts.Length)
		}
		base[i] = cube.BaseSeries{
			Members: []string{memberName(0, i)},
			Series:  timeseries.New(vals, opts.Period),
		}
	}
	return &Dataset{Name: fmt.Sprintf("gen%d", x), Dims: []cube.Dimension{dim}, Base: base, Period: opts.Period}
}
