// Package datasets provides the evaluation data sets of Section VI-A. The
// paper's real-world sets (Tourism, Sales, Energy) are proprietary or
// gated, so seeded synthetic generators reproduce their documented shape:
// dimensionality, base-series count, resolution, length and the statistical
// character the advisor exploits (similar siblings, noisy base data). GenX
// follows the paper exactly: SARIMA-simulated base series summed up a
// level hierarchy whose depth depends on X.
package datasets

import (
	"math/rand"
)

// SARIMAProcess simulates a seasonal ARIMA process — the paper generates
// its synthetic data "by a SARIMA process using the statistical computing
// software environment R"; this replaces that dependency.
type SARIMAProcess struct {
	// AR and MA hold the non-seasonal φ and θ coefficients; SAR and SMA
	// the seasonal ones at lag Period.
	AR, MA, SAR, SMA []float64
	// D and SD are the regular and seasonal integration orders.
	D, SD int
	// Period is the seasonal lag m.
	Period int
	// Sigma is the innovation standard deviation.
	Sigma float64
	// Level is added to the integrated series (bringing sales-like data
	// into a positive range).
	Level float64
}

// Generate simulates n observations with the given RNG. A burn-in of
// 10·Period + 50 steps removes initialization transients. Output values
// are floored at zero to stay in the domain of SUM-aggregated measures.
func (p *SARIMAProcess) Generate(rng *rand.Rand, n int) []float64 {
	period := p.Period
	if period < 1 {
		period = 1
	}
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 1
	}
	burn := 10*period + 50

	ar := expandSeasonal(p.AR, p.SAR, period, false)
	ma := expandSeasonal(p.MA, p.SMA, period, true)

	total := n + burn + p.D + p.SD*period
	w := make([]float64, total)
	e := make([]float64, total)
	for t := 0; t < total; t++ {
		e[t] = rng.NormFloat64() * sigma
		v := e[t]
		for i, c := range ar {
			if t-i-1 >= 0 {
				v += c * w[t-i-1]
			}
		}
		for i, c := range ma {
			if t-i-1 >= 0 {
				v += c * e[t-i-1]
			}
		}
		w[t] = v
	}

	// Integrate: seasonal first, then regular (inverse of differencing
	// order used in estimation; for simulation the order only shapes the
	// trajectory).
	x := w
	for i := 0; i < p.SD; i++ {
		x = cumsumLag(x, period)
	}
	for i := 0; i < p.D; i++ {
		x = cumsumLag(x, 1)
	}

	out := make([]float64, n)
	copy(out, x[len(x)-n:])
	for i := range out {
		out[i] += p.Level
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// cumsumLag integrates a differenced series at the given lag:
// y_t = y_{t-lag} + x_t with zero initial values.
func cumsumLag(x []float64, lag int) []float64 {
	y := make([]float64, len(x))
	for t := range x {
		prev := 0.0
		if t-lag >= 0 {
			prev = y[t-lag]
		}
		y[t] = prev + x[t]
	}
	return y
}

// expandSeasonal multiplies a non-seasonal and a seasonal lag polynomial
// into a single coefficient vector. For AR polynomials (ma=false) the
// convention is 1 - Σ c_i B^i, for MA (ma=true) it is 1 + Σ c_i B^i.
func expandSeasonal(coefs, scoefs []float64, period int, maSign bool) []float64 {
	sign := -1.0
	if maSign {
		sign = 1.0
	}
	n1 := len(coefs)
	n2 := len(scoefs) * period
	p1 := make([]float64, n1+1)
	p1[0] = 1
	for i, c := range coefs {
		p1[i+1] = sign * c
	}
	p2 := make([]float64, n2+1)
	p2[0] = 1
	for i, c := range scoefs {
		p2[(i+1)*period] = sign * c
	}
	full := make([]float64, n1+n2+1)
	for i, a := range p1 {
		if a == 0 {
			continue
		}
		for j, b := range p2 {
			if b == 0 {
				continue
			}
			full[i+j] += a * b
		}
	}
	out := make([]float64, len(full)-1)
	for i := 1; i < len(full); i++ {
		out[i-1] = sign * full[i]
	}
	return out
}
