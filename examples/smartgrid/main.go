// Smartgrid: real-time energy-demand forecasting (the paper's second
// motivating domain). Streams new meter readings into the F²DB engine,
// which batches them, advances the whole time-series graph, maintains
// model states incrementally and re-estimates parameters lazily only when
// an invalid model is hit by a query.
package main

import (
	"fmt"
	"log"
	"time"

	"cubefc"
	"cubefc/internal/datasets"
	"cubefc/internal/f2db"
	"cubefc/internal/workload"
)

func main() {
	ds := datasets.Energy(42, datasets.EnergyOptions{Customers: 30, Days: 30})
	graph, err := ds.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy cube: %d customers in districts, %d nodes, %d hourly readings\n",
		len(graph.BaseIDs), graph.NumNodes(), graph.Length)

	cfg, err := cubefc.Advise(graph, cubefc.AdvisorOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: SMAPE %.4f with %d models\n\n", cfg.Error(), cfg.NumModels())

	// Threshold-based invalidation: re-estimate a model only when its
	// rolling one-step error degrades (Section V).
	db, err := cubefc.OpenDB(graph, cfg, cubefc.DBOptions{
		StepDuration: time.Hour,
		Strategy:     f2db.ThresholdBased{MaxError: 0.25},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream 48 hours of new readings, asking for a day-ahead forecast of
	// the grid total after every 6 hours.
	gen := workload.New(graph, 42)
	for hour := 1; hour <= 48; hour++ {
		batch := gen.NextBatch()
		for _, id := range graph.BaseIDs {
			if err := db.InsertBase(id, batch[id]); err != nil {
				log.Fatal(err)
			}
		}
		if hour%6 == 0 {
			res, err := db.Query("SELECT time, SUM(demand) FROM facts GROUP BY time AS OF now() + '1 day'")
			if err != nil {
				log.Fatal(err)
			}
			var total float64
			for _, r := range res.Rows {
				total += r.Value
			}
			s := db.Stats()
			fmt.Printf("hour %2d: day-ahead grid demand %.1f kWh (batches=%d reestimations=%d invalid=%d)\n",
				hour, total, s.Batches, s.Reestimations, db.InvalidCount())
		}
	}

	s := db.Stats()
	fmt.Printf("\nstream done: %d inserts in %d batches, %d queries, %d re-estimations\n",
		s.Inserts, s.Batches, s.Queries, s.Reestimations)
	fmt.Printf("avg maintenance time per insert: %v\n", s.MaintainTime/time.Duration(s.Inserts))
	fmt.Printf("avg query time: %v\n", s.QueryTime/time.Duration(s.Queries))

	// District-level check: forecasts remain available at every level.
	res, err := db.Query("SELECT time, SUM(demand) FROM facts WHERE district = 'district1' GROUP BY time AS OF now() + '6 hours'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndistrict1, next 6 hours:")
	for _, r := range res.Rows {
		fmt.Printf("  t=%d  %.2f kWh\n", r.T, r.Value)
	}
}
