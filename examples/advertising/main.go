// Advertising: guaranteed display advertising (the paper's third
// motivating domain) — forecasts of user visits along audience attributes.
// The cube is high-dimensional (age group × gender × region), so modeling
// every cell is infeasible; this example runs the advisor stepwise
// (anytime) under an explicit model budget and shows the accuracy/cost
// trade-off after every iteration.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cubefc"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	ages := []string{"18-24", "25-34", "35-44", "45-54", "55+"}
	genders := []string{"f", "m"}
	regions := []string{"north", "south", "east", "west", "central"}

	dims := []cubefc.Dimension{
		cubefc.NewDimension("age", "age"),
		cubefc.NewDimension("gender", "gender"),
		cubefc.NewDimension("region", "region"),
	}

	// 5 × 2 × 5 = 50 base series of daily user visits over 8 weeks with
	// weekly seasonality; younger segments are more volatile.
	const days, period = 56, 7
	var base []cubefc.BaseSeries
	for ai, age := range ages {
		for _, g := range genders {
			for _, r := range regions {
				level := 800 + 500*rng.Float64()
				noise := 0.05 + 0.04*float64(len(ages)-ai)
				vals := make([]float64, days)
				for t := range vals {
					weekly := 1 + 0.25*math.Sin(2*math.Pi*float64(t%period)/period)
					vals[t] = level * weekly * (1 + noise*rng.NormFloat64())
				}
				base = append(base, cubefc.BaseSeries{
					Members: []string{age, g, r},
					Series:  cubefc.NewSeries(vals, period),
				})
			}
		}
	}
	graph, err := cubefc.NewGraph(dims, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audience cube: %d base segments, %d queryable nodes\n\n", len(graph.BaseIDs), graph.NumNodes())

	// Anytime operation (Section III-A): step the advisor manually, watch
	// the error/cost trade-off, and stop at a strict model budget —
	// real-time ad serving cannot afford maintaining hundreds of models.
	const modelBudget = 12
	adv, err := cubefc.NewAdvisor(graph, cubefc.AdvisorOptions{Seed: 99, MaxModels: modelBudget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advisor progress (anytime — could be interrupted after any row):")
	for {
		done, err := adv.Step()
		if err != nil {
			log.Fatal(err)
		}
		cfg := adv.Configuration()
		fmt.Printf("  models=%2d  overall SMAPE=%.4f  alpha=%.2f\n", cfg.NumModels(), cfg.Error(), adv.Alpha())
		if done {
			break
		}
	}
	cfg := adv.Configuration()
	fmt.Printf("\nfinal: %d models (budget %d), SMAPE %.4f — vs %d models for the direct approach\n\n",
		cfg.NumModels(), modelBudget, cfg.Error(), graph.NumNodes())

	db, err := cubefc.OpenDB(graph, cfg, cubefc.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A publisher checking sellable inventory for a campaign target.
	for _, q := range []string{
		"SELECT time, SUM(visits) FROM facts WHERE age = '18-24' AND region = 'north' GROUP BY time AS OF now() + '7 steps'",
		"SELECT time, SUM(visits) FROM facts WHERE gender = 'f' GROUP BY time AS OF now() + '7 steps'",
	} {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, r := range res.Rows {
			total += r.Value
		}
		fmt.Printf("%s\n  → %.0f visits over the next week\n", q, total)
	}
}
