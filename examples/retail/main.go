// Retail: sales forecasting for supply-chain planning (the paper's first
// motivating domain). Compares the advisor against the classical
// hierarchical-forecasting baselines on a product × country sales cube,
// persists the chosen configuration, and navigates forecasts with
// drill-down queries.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"cubefc"
	"cubefc/internal/datasets"
)

func main() {
	ds := datasets.Sales(42)
	graph, err := ds.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales cube: %d base series (product × country), %d graph nodes, %d months\n\n",
		len(graph.BaseIDs), graph.NumNodes(), graph.Length)

	// Compare configuration strategies (Figure 7 style).
	type builder struct {
		name string
		run  func() (*cubefc.Configuration, error)
	}
	builders := []builder{
		{"direct (model per node)", func() (*cubefc.Configuration, error) { return cubefc.Direct(graph, cubefc.BaselineOptions{}) }},
		{"bottom-up", func() (*cubefc.Configuration, error) { return cubefc.BottomUp(graph, cubefc.BaselineOptions{}) }},
		{"top-down", func() (*cubefc.Configuration, error) { return cubefc.TopDown(graph, cubefc.BaselineOptions{}) }},
		{"advisor", func() (*cubefc.Configuration, error) { return cubefc.Advise(graph, cubefc.AdvisorOptions{Seed: 42}) }},
	}
	var chosen *cubefc.Configuration
	for _, b := range builders {
		start := time.Now()
		cfg, err := b.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s error=%.4f models=%2d (%v)\n",
			b.name, cfg.Error(), cfg.NumModels(), time.Since(start).Round(time.Millisecond))
		chosen = cfg
	}
	fmt.Println()

	// Persist the advisor's configuration (F²DB's two-table layout) and
	// restore it — in production this is the handover from the offline
	// advisor to the online engine.
	var buf bytes.Buffer
	if err := cubefc.SaveConfiguration(&buf, chosen); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := cubefc.LoadConfiguration(&buf, graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration persisted (%d bytes) and restored: %d models\n\n", size, restored.NumModels())

	db, err := cubefc.OpenDB(graph, restored, cubefc.DBOptions{StepDuration: 30 * 24 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}

	// Planning session: total demand next quarter with uncertainty, then
	// drill down country by country.
	q := "SELECT time, SUM(sales) FROM facts GROUP BY time AS OF now() + '1 quarter' WITH INTERVAL 95"
	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	for _, r := range res.Rows {
		fmt.Printf("  month t=%d  forecast=%.1f  [%.1f, %.1f]\n", r.T, r.Value, r.Lo, r.Hi)
	}
	plan, err := db.Query("EXPLAIN " + q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  derivation: %s\n\n", plan.Plan)

	// One forecast series per country — a single multi-node query
	// (Section II-A: "a query describes one or several nodes").
	q = "SELECT time, country, SUM(sales) FROM facts GROUP BY time, country AS OF now() + '1 quarter'"
	res, err = db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	for _, grp := range res.Groups {
		var total float64
		for _, r := range grp.Rows {
			total += r.Value
		}
		fmt.Printf("  %-4s next-quarter total %.1f\n", grp.Member, total)
	}

	// Single-cell check for the DE planner.
	q = "SELECT time, SUM(sales) FROM facts WHERE country = 'DE' AND product = 'P1' GROUP BY time AS OF now() + '1 quarter'"
	res, err = db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + q)
	for _, r := range res.Rows {
		fmt.Printf("  month t=%d  forecast=%.1f\n", r.T, r.Value)
	}
}
