// Quickstart: build the running example of the paper (Figure 1) — a sales
// cube over products and cities with a city → region functional dependency
// — let the advisor pick a model configuration, and answer the paper's two
// forecast queries.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cubefc"
)

func main() {
	// Dimensions: product (flat) and location (city rolls up to region).
	product := cubefc.NewDimension("product", "product")
	location, err := cubefc.NewHierarchy("location",
		[]string{"city", "region"},
		[]map[string]string{{
			"C1": "R1", "C2": "R1",
			"C3": "R2", "C4": "R2",
		}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Base series: 36 months of sales for every product × city cell.
	// Cities in the same region share a seasonal pattern.
	rng := rand.New(rand.NewSource(7))
	regionPhase := map[string]float64{"R1": 0.0, "R2": 2.1}
	cityOf := []string{"C1", "C2", "C3", "C4"}
	regionOf := map[string]string{"C1": "R1", "C2": "R1", "C3": "R2", "C4": "R2"}
	var base []cubefc.BaseSeries
	for p := 1; p <= 4; p++ {
		for _, city := range cityOf {
			vals := make([]float64, 36)
			level := 50 + 20*rng.Float64()
			for t := range vals {
				season := 1 + 0.3*math.Sin(2*math.Pi*float64(t)/12+regionPhase[regionOf[city]])
				vals[t] = level * season * (1 + 0.05*rng.NormFloat64())
			}
			base = append(base, cubefc.BaseSeries{
				Members: []string{fmt.Sprintf("P%d", p), city},
				Series:  cubefc.NewSeries(vals, 12),
			})
		}
	}

	// The hyper graph holds every aggregation possibility (Section II-A).
	graph, err := cubefc.NewGraph([]cubefc.Dimension{product, location}, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hyper graph: %d nodes over %d base series\n", graph.NumNodes(), len(graph.BaseIDs))

	// The advisor selects which nodes get models and how every other node
	// derives its forecasts (Sections III/IV).
	cfg, err := cubefc.Advise(graph, cubefc.AdvisorOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: overall SMAPE %.4f with %d models (instead of %d)\n\n",
		cfg.Error(), cfg.NumModels(), graph.NumNodes())

	// Load the configuration into the embedded F²DB engine (Section V).
	db, err := cubefc.OpenDB(graph, cfg, cubefc.DBOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Forecast Query 1 of the paper: product P4 in city C4, next day.
	q1 := "SELECT time, sales FROM facts WHERE product = 'P4' AND city = 'C4' AS OF now() + '1 step'"
	res, err := db.Query(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q1)
	for _, r := range res.Rows {
		fmt.Printf("  t=%d  forecast=%.2f\n", r.T, r.Value)
	}

	// Forecast Query 2: product P4 aggregated over region R2.
	q2 := "SELECT time, SUM(sales) FROM facts WHERE product = 'P4' AND region = 'R2' GROUP BY time AS OF now() + '3 steps'"
	res, err = db.Query(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q2)
	for _, r := range res.Rows {
		fmt.Printf("  t=%d  forecast=%.2f\n", r.T, r.Value)
	}

	// EXPLAIN shows which derivation scheme answers the node.
	res, err = db.Query("EXPLAIN " + q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: node %s → %s\n", res.NodeKey, res.Plan)
}
