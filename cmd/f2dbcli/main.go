// Command f2dbcli is an interactive shell for the embedded F²DB engine:
// it builds a data set, selects (or loads) a model configuration and
// answers forecast queries typed at the prompt.
//
// Usage:
//
//	f2dbcli -dataset tourism
//	f2dbcli -dataset gen1k -config config.f2db
//	f2dbcli -csv facts.csv -dims "product;location=city<region" -period 12
//	f2dbcli -dataset tourism -metrics :9090    # Prometheus text on /metrics
//
// Queries:
//
//	SELECT time, SUM(m) FROM facts WHERE state = 'NSW' GROUP BY time AS OF now() + '2 steps'
//	EXPLAIN SELECT time, SUM(m) FROM facts WHERE purpose = 'holiday'
//	INSERT INTO facts VALUES ('holiday', 'NSW', 123.4)
//
// Meta commands: \stats, \models, \help, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"

	"cubefc/internal/core"
	"cubefc/internal/csvload"
	"cubefc/internal/cube"
	"cubefc/internal/experiments"
	"cubefc/internal/f2db"
)

func main() {
	dataset := flag.String("dataset", "tourism", "data set: tourism, sales, energy, gen1k, gen10k")
	configPath := flag.String("config", "", "load a saved configuration instead of running the advisor")
	dbPath := flag.String("db", "", "open a saved database snapshot (see \\save)")
	csvPath := flag.String("csv", "", "load a fact-table CSV instead of a built-in data set")
	dimSpec := flag.String("dims", "", "dimension spec for -csv, e.g. \"product;location=city<region\"")
	period := flag.Int("period", 1, "seasonal period for -csv data")
	metricsAddr := flag.String("metrics", "", "serve Prometheus-format engine metrics on this address (e.g. :9090)")
	stripes := flag.Int("stripes", 0, "write stripes sharding the insert path (0 = near GOMAXPROCS, rounded to a power of two; negative = single stripe)")
	parallelism := flag.Int("parallelism", 0, "worker pool size for off-lock model re-estimation (0 = GOMAXPROCS)")
	eager := flag.Bool("eager-reestimate", false, "re-fit invalidated models right after the batch advance instead of lazily on first query")
	coldRefit := flag.Bool("cold-refit", false, "disable warm-started re-estimation (full cold parameter search on every re-fit)")
	flag.Parse()
	engineOpts := func() f2db.Options {
		return f2db.Options{
			Strategy:        f2db.TimeBased{Every: 8},
			Stripes:         *stripes,
			Parallelism:     *parallelism,
			EagerReestimate: *eager,
			ColdRefit:       *coldRefit,
		}
	}

	if *dbPath != "" {
		fh, err := os.Open(*dbPath)
		if err != nil {
			fail(err)
		}
		db, err := f2db.LoadDatabase(fh, engineOpts())
		cerr := fh.Close()
		if err != nil {
			fail(err)
		}
		if cerr != nil {
			fail(cerr)
		}
		fmt.Printf("opened %s: %d nodes, %d models\n", *dbPath, db.Graph().NumNodes(), db.Configuration().NumModels())
		serveMetrics(db, *metricsAddr)
		repl(db, *dbPath)
		return
	}

	var g *cube.Graph
	name := *dataset
	if *csvPath != "" {
		specs, err := csvload.ParseSpec(*dimSpec)
		if err != nil {
			fail(err)
		}
		fh, err := os.Open(*csvPath)
		if err != nil {
			fail(err)
		}
		dims, base, err := csvload.Load(fh, specs, csvload.Options{Period: *period})
		cerr := fh.Close()
		if err != nil {
			fail(err)
		}
		if cerr != nil {
			fail(cerr)
		}
		g, err = cube.NewGraph(dims, base)
		if err != nil {
			fail(err)
		}
		name = *csvPath
	} else {
		ds, err := experiments.LoadDataset(*dataset, experiments.Quick)
		if err != nil {
			fail(err)
		}
		gg, err := ds.Graph()
		if err != nil {
			fail(err)
		}
		g = gg
		name = ds.Name
	}
	var cfg *core.Configuration
	if *configPath != "" {
		fh, err := os.Open(*configPath)
		if err != nil {
			fail(err)
		}
		cfg, err = f2db.LoadConfiguration(fh, g)
		cerr := fh.Close()
		if err != nil {
			fail(err)
		}
		if cerr != nil {
			fail(cerr)
		}
		fmt.Printf("loaded configuration: %d models\n", cfg.NumModels())
	} else {
		fmt.Print("running advisor ... ")
		c, err := core.Run(g, core.Options{Seed: 42})
		if err != nil {
			fail(err)
		}
		cfg = c
		fmt.Printf("done: error=%.4f models=%d\n", cfg.Error(), cfg.NumModels())
	}
	db, err := f2db.Open(g, cfg, engineOpts())
	if err != nil {
		fail(err)
	}
	serveMetrics(db, *metricsAddr)
	repl(db, name)
}

// serveMetrics exposes the engine counters on addr/metrics in Prometheus
// text format (no-op when addr is empty). The endpoint is lock-free; it
// never interferes with the interactive session.
func serveMetrics(db *f2db.DB, addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", db.MetricsHandler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "f2dbcli: metrics server:", err)
		}
	}()
}

// repl runs the interactive query loop.
func repl(db *f2db.DB, name string) {
	fmt.Printf("F²DB shell over %s (%d nodes). Type \\help for help.\n", name, db.Graph().NumNodes())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("f2db> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp()
		case line == `\stats`:
			fmt.Printf("pending=%d invalid=%d\n", db.Stats().PendingInserts, db.InvalidCount())
			fmt.Print(db.Metrics())
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			fh, err := os.Create(path)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := f2db.SaveDatabase(fh, db); err != nil {
				fmt.Println("error:", err)
				fh.Close()
				continue
			}
			if err := fh.Close(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("database saved to %s (reopen with -db %s)\n", path, path)
		case line == `\models`:
			cfgView := db.Configuration()
			gView := db.Graph()
			for _, id := range cfgView.ModelIDs() {
				fmt.Printf("  %-40s %s\n", gView.NodeKey(id), cfgView.ModelFamily(id))
			}
		case line == `\health`:
			keys := make([]string, 0)
			health := db.Health()
			for k := range health {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h := health[k]
				marker := ""
				if h.Invalid {
					marker = "  INVALID"
				}
				fmt.Printf("  %-40s %-8s updates=%-4d rolling-err=%.4f%s\n",
					k, h.Family, h.UpdatesSinceFit, h.RollingError, marker)
			}
		case strings.HasPrefix(strings.ToLower(line), "insert"):
			if err := db.Exec(line); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		default:
			res, err := db.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if res.Plan != "" {
				fmt.Printf("node %s: %s\n", res.NodeKey, res.Plan)
			}
			for _, grp := range res.Groups {
				rows := grp.Rows
				if len(res.Groups) > 1 {
					fmt.Printf("%s:\n", grp.NodeKey)
				}
				if len(rows) > 12 {
					fmt.Printf("  (%d rows, last 12)\n", len(rows))
					rows = rows[len(rows)-12:]
				}
				for _, r := range rows {
					marker := ""
					if res.Forecast {
						marker = " (forecast)"
					}
					if r.Lo != 0 || r.Hi != 0 {
						fmt.Printf("  t=%-6d %12.4f  [%.4f, %.4f]%s\n", r.T, r.Value, r.Lo, r.Hi, marker)
					} else {
						fmt.Printf("  t=%-6d %12.4f%s\n", r.T, r.Value, marker)
					}
				}
			}
		}
	}
}

func printHelp() {
	fmt.Print(`queries:
  SELECT time, SUM(m)|AVG(m) FROM facts [WHERE <level> = '<member>' [AND ...]]
         [GROUP BY time[, <level>]] [AS OF now() + '<n> <unit>']
         [WITH INTERVAL <percent>]
  GROUP BY a hierarchy level (e.g. city) drills down: one series per member.
  WITH INTERVAL 95 adds prediction-interval bounds to forecast rows.
  EXPLAIN SELECT ...            show the derivation scheme of the node
  INSERT INTO facts VALUES ('<member>', ..., <value>)[, (...), ...]
  Multi-row INSERTs take the batched write path (one lock per statement).
meta:
  \stats   engine counters      \models      list models
  \health  model maintenance    \save F      snapshot database
  \help    this help            \quit        exit
`)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "f2dbcli:", err)
	os.Exit(1)
}
