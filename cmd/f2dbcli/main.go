// Command f2dbcli is an interactive shell for the F²DB engine: it builds
// a data set, selects (or loads) a model configuration and answers
// forecast queries typed at the prompt — either against an in-process
// engine or, with -remote, against a running f2dbd daemon over the wire
// protocol.
//
// Usage:
//
//	f2dbcli -dataset tourism
//	f2dbcli -dataset gen1k -config config.f2db
//	f2dbcli -csv facts.csv -dims "product;location=city<region" -period 12
//	f2dbcli -dataset tourism -metrics :9090    # Prometheus text on /metrics
//	f2dbcli -remote localhost:7071             # REPL against a live f2dbd
//	f2dbcli -remote localhost:7071 -exec '\ping'
//	f2dbcli -dataset tourism -workload 10 -workload-queries 4
//	f2dbcli -dataset tourism -remote localhost:7071 -workload 10
//
// Queries:
//
//	SELECT time, SUM(m) FROM facts WHERE state = 'NSW' GROUP BY time AS OF now() + '2 steps'
//	EXPLAIN SELECT time, SUM(m) FROM facts WHERE purpose = 'holiday'
//	INSERT INTO facts VALUES ('holiday', 'NSW', 123.4)
//
// Meta commands: \stats, \models, \help, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cubefc/internal/core"
	"cubefc/internal/csvload"
	"cubefc/internal/cube"
	"cubefc/internal/experiments"
	"cubefc/internal/f2db"
	"cubefc/internal/fclient"
	"cubefc/internal/segment"
	"cubefc/internal/sibyl"
	"cubefc/internal/workload"
)

// selftuneStats, when -selftune is on, renders the self-tuning counters
// appended to every local \stats (the remote shell gets the daemon's own
// line through server.Options.ExtraStats instead).
var selftuneStats func() string

func main() {
	dataset := flag.String("dataset", "tourism", "data set: tourism, sales, energy, gen1k, gen10k, cubeN (synthetic cube with ~N nodes, e.g. cube100k)")
	configPath := flag.String("config", "", "load a saved configuration instead of running the advisor")
	dbPath := flag.String("db", "", "open a saved database snapshot (see \\save)")
	csvPath := flag.String("csv", "", "load a fact-table CSV instead of a built-in data set")
	dimSpec := flag.String("dims", "", "dimension spec for -csv, e.g. \"product;location=city<region\"")
	period := flag.Int("period", 1, "seasonal period for -csv data")
	metricsAddr := flag.String("metrics", "", "serve Prometheus-format engine metrics on this address (e.g. :9090)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics listener")
	sampleSize := flag.Int("sample-size", 0, "advisor: estimate indicators and derivations from this many sampled base series per node (0 = exact)")
	exactMode := flag.Bool("exact", false, "advisor: force exact computation even when -sample-size is set")
	lazy := flag.Bool("lazy", false, "build the cube with on-demand node materialization (large cubes)")
	stripes := flag.Int("stripes", 0, "write stripes sharding the insert path (0 = near GOMAXPROCS, rounded to a power of two; negative = single stripe)")
	parallelism := flag.Int("parallelism", 0, "worker pool size for off-lock model re-estimation (0 = GOMAXPROCS)")
	eager := flag.Bool("eager-reestimate", false, "re-fit invalidated models right after the batch advance instead of lazily on first query")
	coldRefit := flag.Bool("cold-refit", false, "disable warm-started re-estimation (full cold parameter search on every re-fit)")
	walDir := flag.String("wal-dir", "", "durable directory (snapshot + write-ahead log + columnar segments); recovers on open, then group-commits every completed batch")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy with -wal-dir: always, never, or an integer n (fsync every n batches)")
	compactEvery := flag.Int("compact-every", 256, "with -wal-dir: compact the sealed WAL span into a columnar segment every n batches (0 disables)")
	remote := flag.String("remote", "", "connect to a running f2dbd at this address instead of opening a local engine")
	execStmt := flag.String("exec", "", "execute one statement (SQL, \\ping, \\stats, \\info or \\save PATH) and exit")
	wlPoints := flag.Int("workload", 0, "run the interleaved insert/query workload for this many time points instead of the REPL")
	wlQueries := flag.Int("workload-queries", 4, "workload: forecast queries per insert")
	wlHorizon := flag.Int("workload-horizon", 1, "workload: forecast horizon in steps")
	wlWriters := flag.Int("workload-writers", 1, "workload: concurrent insert streams (with -remote: writer connections)")
	wlReaders := flag.Int("workload-readers", 1, "workload: reader connections (-remote only)")
	wlSeed := flag.Int64("workload-seed", 1, "workload: generator seed")
	wlHot := flag.Int("workload-hot", 0, "workload: draw queries from a fixed hot set of this many statements (0 = all-random; exercises result caches)")
	wlHotFrac := flag.Float64("workload-hot-frac", 0.9, "workload: fraction of queries drawn from the hot set (with -workload-hot)")
	wlPhases := flag.Int("workload-phases", 0, "workload: split the hot set into this many time-varying phases, cycling one per time point (with -workload-hot; 0 = flat mix)")
	selftune := flag.Bool("selftune", false, "local engine only: run the self-forecasting engine (cache pre-warming, trough maintenance, adaptive cache sizing); counters on \\stats and -metrics")
	selftuneBucket := flag.Duration("selftune-bucket", time.Second, "self-tuning arrival-count bucket width (and control-loop period)")
	selftuneHorizon := flag.Int("selftune-horizon", 1, "self-tuning forecast horizon in buckets")
	selftuneSeason := flag.Int("selftune-season", 0, "self-tuning seasonal period in buckets (0 = non-seasonal smoothing)")
	flag.Parse()
	engineOpts := func() f2db.Options {
		return f2db.Options{
			Strategy:        f2db.TimeBased{Every: 8},
			Stripes:         *stripes,
			Parallelism:     *parallelism,
			EagerReestimate: *eager,
			ColdRefit:       *coldRefit,
		}
	}

	// Remote one-shot / REPL: no local engine at all.
	if *remote != "" && *wlPoints == 0 {
		cl, err := fclient.Dial(*remote, fclient.Options{})
		if err != nil {
			fail(err)
		}
		defer cl.Close()
		if *execStmt != "" {
			if err := remoteStmt(cl, *execStmt); err != nil {
				fail(err)
			}
			return
		}
		remoteRepl(cl, *remote)
		return
	}

	// Remote workload: the local side only needs the graph, to render the
	// same SQL the daemon's data set understands.
	if *remote != "" {
		g, _, err := buildGraph(*dataset, *csvPath, *dimSpec, *period, *lazy)
		if err != nil {
			fail(err)
		}
		gen := workload.New(g, *wlSeed)
		res, err := workload.Run(nil, gen, workload.Options{
			TimePoints:       *wlPoints,
			QueriesPerInsert: *wlQueries,
			Horizon:          *wlHorizon,
			InsertWriters:    *wlWriters,
			HotQueries:       *wlHot,
			HotFraction:      *wlHotFrac,
			Phases:           *wlPhases,
			RemoteAddr:       *remote,
			RemoteReaders:    *wlReaders,
		})
		if err != nil {
			fail(err)
		}
		printWorkload(res)
		return
	}

	var db *f2db.DB
	var g *cube.Graph
	var dur *f2db.Durable
	name := *dataset
	// openLocal builds the in-process engine from -db / -csv / -dataset,
	// setting g and name as it learns them. It doubles as OpenDurable's
	// build function: with -wal-dir it only runs when the durable directory
	// holds no snapshot yet.
	openLocal := func() (*f2db.DB, error) {
		if *dbPath != "" {
			fh, err := os.Open(*dbPath)
			if err != nil {
				return nil, err
			}
			d, err := f2db.LoadDatabase(fh, engineOpts())
			cerr := fh.Close()
			if err != nil {
				return nil, err
			}
			if cerr != nil {
				return nil, cerr
			}
			fmt.Printf("opened %s: %d nodes, %d models\n", *dbPath, d.Graph().NumNodes(), d.Configuration().NumModels())
			name = *dbPath
			return d, nil
		}
		gg, gname, err := buildGraph(*dataset, *csvPath, *dimSpec, *period, *lazy)
		if err != nil {
			return nil, err
		}
		g, name = gg, gname
		var cfg *core.Configuration
		if *configPath != "" {
			fh, err := os.Open(*configPath)
			if err != nil {
				return nil, err
			}
			cfg, err = f2db.LoadConfiguration(fh, g)
			cerr := fh.Close()
			if err != nil {
				return nil, err
			}
			if cerr != nil {
				return nil, cerr
			}
			fmt.Printf("loaded configuration: %d models\n", cfg.NumModels())
		} else {
			fmt.Print("running advisor ... ")
			c, err := core.Run(g, core.Options{Seed: 42, SampleSize: *sampleSize, Exact: *exactMode})
			if err != nil {
				return nil, err
			}
			cfg = c
			fmt.Printf("done: error=%.4f models=%d\n", cfg.Error(), cfg.NumModels())
		}
		return f2db.Open(g, cfg, engineOpts())
	}
	if *walDir != "" {
		pol, err := segment.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			fail(err)
		}
		d, err := f2db.OpenDurable(
			f2db.DurableOptions{Dir: *walDir, Sync: pol, CompactEvery: *compactEvery},
			engineOpts(), openLocal)
		if err != nil {
			fail(err)
		}
		dur, db = d, d.DB()
		rec := d.Recovery
		if rec.FreshBuild {
			fmt.Printf("durable dir %s initialized (snapshot at generation %d, fsync=%s)\n", *walDir, rec.SnapshotGen, pol)
		} else {
			name = *walDir
			fmt.Printf("recovered %s: snapshot generation %d, %d segment + %d WAL batches replayed, %d torn bytes discarded\n",
				*walDir, rec.SnapshotGen, rec.SegmentBatches, rec.WALBatches, rec.TornBytes)
		}
		// On any clean exit, checkpoint so the next open starts from a
		// snapshot instead of replaying the session's whole WAL.
		defer func() {
			if err := dur.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "f2dbcli: checkpoint:", err)
				return
			}
			if err := dur.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "f2dbcli: closing WAL:", err)
			}
		}()
	} else {
		d, err := openLocal()
		if err != nil {
			fail(err)
		}
		db = d
	}
	var sibCollectors []f2db.Collector
	if *selftune {
		sib := sibyl.New(sibyl.Options{
			Bucket:  *selftuneBucket,
			Horizon: *selftuneHorizon,
			Season:  *selftuneSeason,
		})
		db.SetTelemetry(sib)
		sib.Attach(
			&sibyl.Prewarm{Run: func(sql string) error {
				_, err := db.Query(sql)
				return err
			}},
			&sibyl.TroughWork{Run: func() {
				db.ReestimateInvalid()
				if dur != nil {
					_ = dur.Compact()
				}
			}},
			&sibyl.CacheSizer{
				Name:    "plan-cache",
				Apply:   func(n int) { db.SetPlanCacheCapacity(n) },
				Min:     64,
				Max:     64 << 10,
				Current: 256,
			},
			&sibyl.CacheSizer{
				Name:        "forecast-cache",
				Apply:       func(n int) { db.SetForecastCacheCapacity(n) },
				Min:         256,
				Max:         1 << 20,
				PerTemplate: 8,
				Current:     4096,
			},
		)
		selftuneStats = sib.Metrics().StatsLine
		sibCollectors = append(sibCollectors, sib.Metrics().WritePrometheus)
		sib.Start()
		defer sib.Stop()
	}
	if *pprofFlag && *metricsAddr == "" {
		fail(fmt.Errorf("-pprof mounts on the metrics listener; set -metrics too"))
	}
	serveMetrics(db, *metricsAddr, *pprofFlag, sibCollectors...)
	if *wlPoints > 0 {
		if g == nil {
			fail(fmt.Errorf("-workload needs a data set graph; it does not run against a -db snapshot"))
		}
		gen := workload.New(g, *wlSeed)
		res, err := workload.Run(db, gen, workload.Options{
			TimePoints:       *wlPoints,
			QueriesPerInsert: *wlQueries,
			Horizon:          *wlHorizon,
			InsertWriters:    *wlWriters,
			HotQueries:       *wlHot,
			HotFraction:      *wlHotFrac,
			Phases:           *wlPhases,
			UseSQL:           true,
		})
		if err != nil {
			fail(err)
		}
		printWorkload(res)
		return
	}
	if *execStmt != "" {
		if err := localStmt(db, *execStmt); err != nil {
			fail(err)
		}
		return
	}
	repl(db, name)
}

// buildGraph constructs the data cube from a CSV fact table or a built-in
// data set, eagerly or with on-demand node materialization (-lazy).
func buildGraph(dataset, csvPath, dimSpec string, period int, lazy bool) (*cube.Graph, string, error) {
	if csvPath != "" {
		specs, err := csvload.ParseSpec(dimSpec)
		if err != nil {
			return nil, "", err
		}
		fh, err := os.Open(csvPath)
		if err != nil {
			return nil, "", err
		}
		dims, base, err := csvload.Load(fh, specs, csvload.Options{Period: period})
		cerr := fh.Close()
		if err != nil {
			return nil, "", err
		}
		if cerr != nil {
			return nil, "", cerr
		}
		newGraph := cube.NewGraph
		if lazy {
			newGraph = cube.NewLazyGraph
		}
		g, err := newGraph(dims, base)
		if err != nil {
			return nil, "", err
		}
		return g, csvPath, nil
	}
	ds, err := experiments.LoadDataset(dataset, experiments.Quick)
	if err != nil {
		return nil, "", err
	}
	var g *cube.Graph
	if lazy {
		g, err = ds.LazyGraph()
	} else {
		g, err = ds.Graph()
	}
	if err != nil {
		return nil, "", err
	}
	return g, ds.Name, nil
}

// serveMetrics exposes the engine counters on addr/metrics in Prometheus
// text format (no-op when addr is empty). Mounting goes through
// f2db.MountMetrics — the same helper f2dbd uses — so the endpoint cannot
// drift between the two binaries. The endpoint is lock-free; it never
// interferes with the interactive session.
func serveMetrics(db *f2db.DB, addr string, withPprof bool, extra ...f2db.Collector) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	f2db.MountMetrics(mux, db, extra...)
	if withPprof {
		f2db.MountPprof(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "f2dbcli: metrics server:", err)
		}
	}()
}

// printWorkload reports a workload run.
func printWorkload(res workload.RunResult) {
	fmt.Printf("workload: %d inserts, %d queries in %v (avg query %v)\n",
		res.Inserts, res.Queries, res.TotalTime.Round(0), res.AvgQueryTime)
	if res.QueryTime > 0 || res.MaintainTime > 0 {
		fmt.Printf("engine: query=%v maintain=%v reestimations=%d (%v engine time/query)\n",
			res.QueryTime, res.MaintainTime, res.Reestimations, res.EngineTimePerQuery())
	}
}

// saveDB snapshots the engine to path through the shared crash-safe
// protocol (tmp file, fsync, rename, directory fsync) — a \save that
// returned without the syncs could still lose the file to a crash.
func saveDB(db *f2db.DB, path string) error {
	return f2db.WriteSnapshotFile(nil, path, db)
}

// localStmt executes one statement against the in-process engine.
func localStmt(db *f2db.DB, stmt string) error {
	switch {
	case stmt == `\ping`:
		fmt.Println("pong")
		return nil
	case stmt == `\stats`:
		fmt.Printf("pending=%d invalid=%d\n", db.Stats().PendingInserts, db.InvalidCount())
		fmt.Print(db.Metrics())
		if selftuneStats != nil {
			fmt.Print(selftuneStats())
		}
		return nil
	case strings.HasPrefix(stmt, `\save `):
		path := strings.TrimSpace(strings.TrimPrefix(stmt, `\save `))
		if err := saveDB(db, path); err != nil {
			return err
		}
		fmt.Printf("database saved to %s (reopen with -db %s)\n", path, path)
		return nil
	case strings.HasPrefix(strings.ToLower(stmt), "insert"):
		if err := db.Exec(stmt); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		res, err := db.Query(stmt)
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}
}

// remoteStmt executes one statement against a live f2dbd.
func remoteStmt(cl *fclient.Client, stmt string) error {
	switch {
	case stmt == `\ping`:
		if err := cl.Ping(); err != nil {
			return err
		}
		fmt.Println("pong")
		return nil
	case stmt == `\stats`:
		text, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case stmt == `\info`:
		info, err := cl.Info()
		if err != nil {
			return err
		}
		fmt.Printf("nonce=%016x inserts=%d batches=%d\n", info.Nonce, info.Inserts, info.Batches)
		return nil
	case strings.HasPrefix(strings.ToLower(stmt), "insert"):
		if err := cl.Exec(stmt); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		res, err := cl.Query(stmt)
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}
}

// remoteRepl runs the interactive loop against a live f2dbd.
func remoteRepl(cl *fclient.Client, addr string) {
	fmt.Printf("F²DB shell over f2dbd at %s. Type \\help for help.\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("f2db> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp()
		default:
			if err := remoteStmt(cl, line); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// repl runs the interactive query loop.
func repl(db *f2db.DB, name string) {
	fmt.Printf("F²DB shell over %s (%d nodes). Type \\help for help.\n", name, db.Graph().NumNodes())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("f2db> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			printHelp()
		case line == `\stats`:
			fmt.Printf("pending=%d invalid=%d\n", db.Stats().PendingInserts, db.InvalidCount())
			fmt.Print(db.Metrics())
			if selftuneStats != nil {
				fmt.Print(selftuneStats())
			}
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := saveDB(db, path); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("database saved to %s (reopen with -db %s)\n", path, path)
		case line == `\models`:
			cfgView := db.Configuration()
			gView := db.Graph()
			for _, id := range cfgView.ModelIDs() {
				fmt.Printf("  %-40s %s\n", gView.NodeKey(id), cfgView.ModelFamily(id))
			}
		case line == `\health`:
			keys := make([]string, 0)
			health := db.Health()
			for k := range health {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h := health[k]
				marker := ""
				if h.Invalid {
					marker = "  INVALID"
				}
				fmt.Printf("  %-40s %-8s updates=%-4d rolling-err=%.4f%s\n",
					k, h.Family, h.UpdatesSinceFit, h.RollingError, marker)
			}
		case strings.HasPrefix(strings.ToLower(line), "insert"):
			if err := db.Exec(line); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		default:
			res, err := db.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
		}
	}
}

// printResult renders one query result, shared by the local and remote
// paths.
func printResult(res *f2db.Result) {
	if res.Plan != "" {
		fmt.Printf("node %s: %s\n", res.NodeKey, res.Plan)
	}
	for _, grp := range res.Groups {
		rows := grp.Rows
		if len(res.Groups) > 1 {
			fmt.Printf("%s:\n", grp.NodeKey)
		}
		if len(rows) > 12 {
			fmt.Printf("  (%d rows, last 12)\n", len(rows))
			rows = rows[len(rows)-12:]
		}
		for _, r := range rows {
			marker := ""
			if res.Forecast {
				marker = " (forecast)"
			}
			if r.Lo != 0 || r.Hi != 0 {
				fmt.Printf("  t=%-6d %12.4f  [%.4f, %.4f]%s\n", r.T, r.Value, r.Lo, r.Hi, marker)
			} else {
				fmt.Printf("  t=%-6d %12.4f%s\n", r.T, r.Value, marker)
			}
		}
	}
}

func printHelp() {
	fmt.Print(`queries:
  SELECT time, SUM(m)|AVG(m) FROM facts [WHERE <level> = '<member>' [AND ...]]
         [GROUP BY time[, <level>]] [AS OF now() + '<n> <unit>']
         [WITH INTERVAL <percent>]
  GROUP BY a hierarchy level (e.g. city) drills down: one series per member.
  WITH INTERVAL 95 adds prediction-interval bounds to forecast rows.
  EXPLAIN SELECT ...            show the derivation scheme of the node
  INSERT INTO facts VALUES ('<member>', ..., <value>)[, (...), ...]
  Multi-row INSERTs take the batched write path (one lock per statement).
meta:
  \stats   engine counters      \models      list models
  \health  model maintenance    \save F      snapshot database
  \help    this help            \quit        exit
  (remote shells support \stats, \ping and \info — the server's process
  nonce and applied insert/batch counters; \save runs on the daemon side
  via f2dbd -save)
`)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "f2dbcli:", err)
	os.Exit(1)
}
