// Command experiments regenerates the paper's evaluation figures
// (Section VI). Each figure prints the same rows/series the paper plots.
//
// Usage:
//
//	experiments                  # all figures, quick scale
//	experiments -fig 7           # Figure 7 on all four data sets
//	experiments -fig 8b          # one sub-figure
//	experiments -fig ablation    # design-decision ablations
//	experiments -scale paper     # paper-sized data sets (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cubefc/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 7, 7a..7d, 8a..8f, 9a, 9b, ablation, all")
	scaleFlag := flag.String("scale", "quick", "data set scale: quick or paper")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	flag.Parse()
	csvDir = *outDir
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	scale := experiments.Quick
	switch strings.ToLower(*scaleFlag) {
	case "quick":
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	runners := map[string]func() error{
		"7a":       func() error { return printFig7("tourism", scale) },
		"7b":       func() error { return printFig7("sales", scale) },
		"7c":       func() error { return printFig7("energy", scale) },
		"7d":       func() error { return printFig7("gen10k", scale) },
		"8a":       func() error { return printTable(experiments.Fig8a(scale)) },
		"8b":       func() error { return printTable(experiments.Fig8b(scale)) },
		"8c":       func() error { return printTable(experiments.Fig8c(scale)) },
		"8d":       func() error { return printTable(experiments.Fig8d(scale)) },
		"8e":       func() error { return printTable(experiments.Fig8e(scale)) },
		"8f":       func() error { return printTable(experiments.Fig8f(scale)) },
		"9a":       func() error { return printTable(experiments.Fig9a(scale)) },
		"9b":       func() error { return printTable(experiments.Fig9b(scale)) },
		"ablation": func() error { return printTable(experiments.Ablations(scale)) },
	}
	order := []string{"7a", "7b", "7c", "7d", "8a", "8b", "8c", "8d", "8e", "8f", "9a", "9b", "ablation"}

	var selected []string
	switch strings.ToLower(*fig) {
	case "all":
		selected = order
	case "7":
		selected = []string{"7a", "7b", "7c", "7d"}
	case "8":
		selected = []string{"8a", "8b", "8c", "8d", "8e", "8f"}
	case "9":
		selected = []string{"9a", "9b"}
	default:
		key := strings.ToLower(*fig)
		if _, ok := runners[key]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
		selected = []string{key}
	}

	start := time.Now()
	for _, key := range selected {
		if err := runners[key](); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", key, err)
			os.Exit(1)
		}
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

func printFig7(dataset string, scale experiments.Scale) error {
	return printTable(experiments.Fig7(dataset, scale))
}

// csvDir, when non-empty, receives one CSV file per printed table.
var csvDir string

func printTable(t *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	t.Fprint(os.Stdout)
	if csvDir != "" {
		name := strings.ToLower(strings.SplitN(t.Title, ":", 2)[0])
		name = strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(name) + ".csv"
		fh, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(fh); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}
	return nil
}
