package main

import (
	"cubefc/internal/coord"
	"cubefc/internal/f2db"
	"cubefc/internal/sibyl"
)

// Self-tuning wiring (-selftune): one sibyl.Engine fed by the serving
// tier's query telemetry drives three actuators. The attach helpers below
// are the only place the daemon decides what "act on a prediction" means
// for each tier; sibyl itself stays policy-free.

// attachEngineTuning points the self-forecasting engine at a local engine:
// pre-warm predicted spike templates through the real query path, schedule
// eager re-estimation (and segment compaction when durable) into predicted
// troughs, and size the plan cache and forecast memo from the predicted
// working set.
func attachEngineTuning(sib *sibyl.Engine, db *f2db.DB, dur *f2db.Durable) {
	db.SetTelemetry(sib)
	sib.Attach(
		&sibyl.Prewarm{Run: func(sql string) error {
			_, err := db.Query(sql)
			return err
		}},
		&sibyl.TroughWork{Run: func() {
			db.ReestimateInvalid()
			if dur != nil {
				_ = dur.Compact()
			}
		}},
		&sibyl.CacheSizer{
			Name:    "plan-cache",
			Apply:   func(n int) { db.SetPlanCacheCapacity(n) },
			Min:     64,
			Max:     64 << 10,
			Current: 256, // Open's defaultPlanCacheSize
		},
		&sibyl.CacheSizer{
			Name:        "forecast-cache",
			Apply:       func(n int) { db.SetForecastCacheCapacity(n) },
			Min:         256,
			Max:         1 << 20,
			PerTemplate: 8, // distinct (node, horizon, confidence) per template
			Current:     4096, // Open's defaultForecastCacheSize
		},
	)
}

// attachCoordTuning is the coordinator-tier equivalent: pre-warm through
// the routed query path (filling the result cache and route memo ahead of
// the spike) and size the read cache from the predicted working set.
// cacheSize <= 0 means the read cache is disabled; only pre-warming (which
// still fills the shards' own caches) is attached then.
func attachCoordTuning(sib *sibyl.Engine, co *coord.Coordinator, cacheSize int) {
	co.SetTelemetry(sib)
	acts := []sibyl.Actuator{
		&sibyl.Prewarm{Run: func(sql string) error {
			_, err := co.Query(sql)
			return err
		}},
	}
	if cacheSize > 0 {
		acts = append(acts, &sibyl.CacheSizer{
			Name:        "coord-cache",
			Apply:       func(n int) { co.SetCacheCapacity(n) },
			Min:         64,
			Max:         64 << 10,
			PerTemplate: 2, // one result entry + one route-memo entry
			Current:     cacheSize,
		})
	}
	sib.Attach(acts...)
}
