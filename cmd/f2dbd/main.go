// Command f2dbd is the F²DB network daemon: it loads a data set (or a
// saved database snapshot), runs or loads a model configuration, and
// serves forecast queries over the length-prefixed wire protocol
// (internal/wire) to fclient connections. A sidecar HTTP listener exposes
// engine and server metrics in Prometheus text format.
//
// Usage:
//
//	f2dbd -dataset tourism -addr :7071
//	f2dbd -db snapshot.f2db -addr :7071 -metrics :9090 -save snapshot.f2db
//	f2dbd -dataset tourism -wal-dir /var/lib/f2db -fsync always -compact-every 256
//	f2dbd -coordinator -shards host1:7071,host2:7071 -dataset tourism -addr :7070
//	f2dbd -dataset tourism -selftune -selftune-bucket 1s -selftune-season 60
//
// With -wal-dir the daemon is crash-durable: on boot it recovers the
// directory (snapshot, then columnar segments, then the WAL tail —
// discarding a torn final record), and while serving it group-commits
// every completed insert batch to the WAL before applying it. SIGTERM
// checkpoints the directory after the drain.
//
// In -coordinator mode the daemon holds no engine: it routes statements
// to the f2dbd shards listed in -shards (each serving a full replica of
// the same data set) over the same wire protocol it serves, so clients
// are indifferent to whether they talk to a shard or the coordinator.
// The data set (or snapshot) is still loaded — for its hyper graph, which
// the statement router resolves queries against. Repeated statements are
// answered from an epoch-invalidated result cache without touching the
// shards (-coord-cache, on by default; -coord-cache-size), and the
// replicated statement log is bounded (-log-retain).
//
// With -selftune the daemon runs the internal/sibyl self-forecasting
// engine over its own query stream: per-template arrival counts feed
// warm-started workload models whose predictions pre-warm caches before
// forecast spikes, schedule re-estimation and compaction into predicted
// troughs, and size the caches to the predicted working set. Works in
// both engine and coordinator mode; counters appear under sibyl_* on
// -metrics and on the \stats line. With -wal-dir, -checkpoint-every /
// -checkpoint-batches bound WAL replay length by checkpointing in the
// background.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, answers
// every in-flight request, optionally saves a snapshot (-save), and exits
// 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cubefc/internal/coord"
	"cubefc/internal/core"
	"cubefc/internal/experiments"
	"cubefc/internal/f2db"
	"cubefc/internal/segment"
	"cubefc/internal/server"
	"cubefc/internal/sibyl"
)

func main() {
	addr := flag.String("addr", ":7071", "wire-protocol listen address")
	metricsAddr := flag.String("metrics", "", "serve Prometheus-format metrics on this address (e.g. :9090)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics listener")
	dataset := flag.String("dataset", "tourism", "data set: tourism, sales, energy, gen1k, gen10k, cubeN (synthetic cube with ~N nodes, e.g. cube100k)")
	configPath := flag.String("config", "", "load a saved configuration instead of running the advisor")
	dbPath := flag.String("db", "", "open a saved database snapshot instead of a data set")
	savePath := flag.String("save", "", "save a database snapshot to this path after draining")
	stripes := flag.Int("stripes", 0, "write stripes sharding the insert path (0 = near GOMAXPROCS, rounded to a power of two; negative = single stripe)")
	parallelism := flag.Int("parallelism", 0, "worker pool size for off-lock model re-estimation (0 = GOMAXPROCS)")
	eager := flag.Bool("eager-reestimate", false, "re-fit invalidated models right after the batch advance instead of lazily on first query")
	coldRefit := flag.Bool("cold-refit", false, "disable warm-started re-estimation (full cold parameter search on every re-fit)")
	walDir := flag.String("wal-dir", "", "durable directory (snapshot + write-ahead log + columnar segments); recovers on boot, then group-commits every completed batch")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy with -wal-dir: always, never, or an integer n (fsync every n batches)")
	compactEvery := flag.Int("compact-every", 256, "with -wal-dir: compact the sealed WAL span into a columnar segment every n batches (0 disables)")
	maxConns := flag.Int("max-conns", 0, "maximum concurrent client connections (0 = default 256)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request processing timeout (0 = default 30s)")
	idleTimeout := flag.Duration("idle-timeout", 0, "idle connection timeout (0 = default 5m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline before in-flight connections are force-closed")
	coordinator := flag.Bool("coordinator", false, "route statements to the -shards cluster instead of serving a local engine")
	shardsFlag := flag.String("shards", "", "comma-separated f2dbd shard addresses (coordinator mode)")
	coordCache := flag.Bool("coord-cache", true, "coordinator mode: serve repeated statements from the epoch-invalidated result cache instead of fanning out")
	coordCacheSize := flag.Int("coord-cache-size", 1024, "coordinator mode: result cache and route memo capacity in statements")
	coordLogRetain := flag.Int("log-retain", 0, "coordinator mode: statement-log entries retained for restart realignment (0 = default 4096, negative = unlimited)")
	selftune := flag.Bool("selftune", false, "run the self-forecasting engine: per-template workload prediction drives cache pre-warming, trough-scheduled maintenance, and adaptive cache sizing")
	selftuneBucket := flag.Duration("selftune-bucket", time.Second, "self-tuning arrival-count bucket width (and control-loop period)")
	selftuneHorizon := flag.Int("selftune-horizon", 1, "self-tuning forecast horizon in buckets")
	selftuneSeason := flag.Int("selftune-season", 0, "self-tuning seasonal period in buckets (0 = non-seasonal smoothing)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "with -wal-dir: background checkpoint after this much time, if batches were applied (0 disables)")
	checkpointBatches := flag.Int64("checkpoint-batches", 0, "with -wal-dir: background checkpoint every n applied batches (0 disables)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "f2dbd: "+format+"\n", args...)
	}
	srvOpts := server.Options{
		MaxConns:       *maxConns,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idleTimeout,
		Logf:           logf,
	}
	var sib *sibyl.Engine
	if *selftune {
		sib = sibyl.New(sibyl.Options{
			Bucket:  *selftuneBucket,
			Horizon: *selftuneHorizon,
			Season:  *selftuneSeason,
			Logf:    logf,
		})
		srvOpts.ExtraStats = sib.Metrics().StatsLine
	}

	var (
		db      *f2db.DB
		dur     *f2db.Durable
		ckpt    *f2db.CheckpointScheduler
		co      *coord.Coordinator
		srv     *server.Server
		metrics []f2db.Collector
		name    string
	)
	if (*checkpointEvery > 0 || *checkpointBatches > 0) && *walDir == "" {
		fail(fmt.Errorf("-checkpoint-every/-checkpoint-batches need -wal-dir"))
	}
	if *coordinator {
		if *shardsFlag == "" {
			fail(fmt.Errorf("-coordinator requires -shards"))
		}
		if *walDir != "" {
			fail(fmt.Errorf("-wal-dir needs a local engine; the shards own the data in coordinator mode"))
		}
		if *savePath != "" {
			fail(fmt.Errorf("-save needs a local engine; the shards own the data in coordinator mode"))
		}
		addrs := strings.Split(*shardsFlag, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		planner, gname, err := openPlanner(*dbPath, *dataset)
		if err != nil {
			fail(err)
		}
		cacheSize := 0
		if *coordCache {
			cacheSize = *coordCacheSize
		}
		co, err = coord.New(planner, addrs, coord.Options{
			CacheSize: cacheSize,
			LogRetain: *coordLogRetain,
			Logf:      logf,
		})
		if err != nil {
			fail(err)
		}
		if sib != nil {
			attachCoordTuning(sib, co, cacheSize)
		}
		srv = server.NewBackend(co, srvOpts)
		metrics = []f2db.Collector{co.Metrics().Collector(), srv.Metrics().Collector()}
		if sib != nil {
			metrics = append(metrics, sib.Metrics().WritePrometheus)
		}
		name = fmt.Sprintf("%s across %d shards", gname, len(addrs))
	} else {
		opts := f2db.Options{
			Strategy:        f2db.TimeBased{Every: 8},
			Stripes:         *stripes,
			Parallelism:     *parallelism,
			EagerReestimate: *eager,
			ColdRefit:       *coldRefit,
		}
		if *walDir != "" {
			pol, err := segment.ParseSyncPolicy(*fsyncFlag)
			if err != nil {
				fail(err)
			}
			name = *walDir
			d, err := f2db.OpenDurable(
				f2db.DurableOptions{Dir: *walDir, Sync: pol, CompactEvery: *compactEvery},
				opts,
				func() (*f2db.DB, error) {
					fresh, n, err := openEngine(*dbPath, *dataset, *configPath, opts)
					if err == nil {
						name = fmt.Sprintf("%s (durable in %s)", n, *walDir)
					}
					return fresh, err
				})
			if err != nil {
				fail(err)
			}
			dur, db = d, d.DB()
			rec := d.Recovery
			if rec.FreshBuild {
				logf("durable dir %s initialized (snapshot at generation %d, fsync=%s)", *walDir, rec.SnapshotGen, pol)
			} else {
				logf("recovered %s: snapshot generation %d, %d segment + %d WAL batches replayed, %d torn bytes discarded",
					*walDir, rec.SnapshotGen, rec.SegmentBatches, rec.WALBatches, rec.TornBytes)
			}
		} else {
			var err error
			db, name, err = openEngine(*dbPath, *dataset, *configPath, opts)
			if err != nil {
				fail(err)
			}
		}
		if sib != nil {
			attachEngineTuning(sib, db, dur)
		}
		if dur != nil && (*checkpointEvery > 0 || *checkpointBatches > 0) {
			ckpt = f2db.NewCheckpointScheduler(dur, f2db.CheckpointPolicy{
				Every:        *checkpointEvery,
				EveryBatches: *checkpointBatches,
			}, logf)
			ckpt.Start()
		}
		srv = server.New(db, srvOpts)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	if co != nil {
		fmt.Printf("f2dbd: coordinating %s on %s\n", name, ln.Addr())
	} else {
		fmt.Printf("f2dbd: serving %s (%d nodes, %d models) on %s\n",
			name, db.Graph().NumNodes(), db.Configuration().NumModels(), ln.Addr())
	}

	if *pprofFlag && *metricsAddr == "" {
		fail(fmt.Errorf("-pprof mounts on the metrics listener; set -metrics too"))
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		if co != nil {
			f2db.MountCollectors(mux, metrics...)
		} else {
			extras := []f2db.Collector{srv.Metrics().Collector()}
			if sib != nil {
				extras = append(extras, sib.Metrics().WritePrometheus)
			}
			f2db.MountMetrics(mux, db, extras...)
		}
		if *pprofFlag {
			f2db.MountPprof(mux)
		}
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("f2dbd: metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "f2dbd: metrics server:", err)
			}
		}()
	}

	if sib != nil {
		sib.Start()
		fmt.Printf("f2dbd: self-tuning every %s (horizon %d, season %d)\n",
			sib.Bucket(), *selftuneHorizon, *selftuneSeason)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Printf("f2dbd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		drainErr := srv.Shutdown(ctx)
		cancel()
		if sib != nil {
			// Stop the control loop before closing the tiers it actuates on.
			sib.Stop()
		}
		if ckpt != nil {
			ckpt.Stop()
		}
		if co != nil {
			_ = co.Close()
		}
		if dur != nil {
			// Checkpoint after the drain: no request is in flight, so the
			// snapshot captures exactly the served state, and the next boot
			// starts from it with an empty WAL.
			if err := dur.Checkpoint(); err != nil {
				fail(fmt.Errorf("checkpoint: %w", err))
			}
			if err := dur.Close(); err != nil {
				fail(fmt.Errorf("closing WAL: %w", err))
			}
			fmt.Printf("f2dbd: checkpointed durable dir %s\n", *walDir)
		}
		if *savePath != "" {
			if err := saveSnapshot(*savePath, db); err != nil {
				fail(err)
			}
			fmt.Printf("f2dbd: database saved to %s\n", *savePath)
		}
		if drainErr != nil {
			fail(fmt.Errorf("drain deadline exceeded: %w", drainErr))
		}
		fmt.Println("f2dbd: drained cleanly")
	}
}

// openPlanner loads just the statement router the coordinator needs: a
// planner over a snapshot's graph when dbPath is set, the data set's
// otherwise. Shards must serve replicas of the same data set, or routing
// and results drift.
func openPlanner(dbPath, dataset string) (*f2db.Planner, string, error) {
	if dbPath != "" {
		fh, err := os.Open(dbPath)
		if err != nil {
			return nil, "", err
		}
		defer fh.Close()
		db, err := f2db.LoadDatabase(fh, f2db.Options{Strategy: f2db.Never{}, Stripes: -1})
		if err != nil {
			return nil, "", err
		}
		return db.Planner(), dbPath, nil
	}
	ds, err := experiments.LoadDataset(dataset, experiments.Quick)
	if err != nil {
		return nil, "", err
	}
	g, err := ds.Graph()
	if err != nil {
		return nil, "", err
	}
	return f2db.NewPlanner(g, 0), ds.Name, nil
}

// openEngine builds the engine the daemon serves: a snapshot restore when
// dbPath is set, otherwise a data set plus a loaded-or-advised
// configuration.
func openEngine(dbPath, dataset, configPath string, opts f2db.Options) (*f2db.DB, string, error) {
	if dbPath != "" {
		fh, err := os.Open(dbPath)
		if err != nil {
			return nil, "", err
		}
		defer fh.Close()
		db, err := f2db.LoadDatabase(fh, opts)
		if err != nil {
			return nil, "", err
		}
		return db, dbPath, nil
	}
	ds, err := experiments.LoadDataset(dataset, experiments.Quick)
	if err != nil {
		return nil, "", err
	}
	g, err := ds.Graph()
	if err != nil {
		return nil, "", err
	}
	var cfg *core.Configuration
	if configPath != "" {
		fh, err := os.Open(configPath)
		if err != nil {
			return nil, "", err
		}
		cfg, err = f2db.LoadConfiguration(fh, g)
		cerr := fh.Close()
		if err != nil {
			return nil, "", err
		}
		if cerr != nil {
			return nil, "", cerr
		}
	} else {
		fmt.Print("f2dbd: running advisor ... ")
		cfg, err = core.Run(g, core.Options{Seed: 42})
		if err != nil {
			return nil, "", err
		}
		fmt.Printf("done: error=%.4f models=%d\n", cfg.Error(), cfg.NumModels())
	}
	db, err := f2db.Open(g, cfg, opts)
	if err != nil {
		return nil, "", err
	}
	return db, ds.Name, nil
}

// saveSnapshot writes the engine image through the shared crash-safe
// protocol (tmp file, fsync, rename, directory fsync). The earlier bare
// tmp+rename left two windows a crash could fall into — the renamed file's
// blocks still unflushed, or the rename's directory entry itself lost —
// both closed by WriteSnapshotFile.
func saveSnapshot(path string, db *f2db.DB) error {
	return f2db.WriteSnapshotFile(nil, path, db)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "f2dbd:", err)
	os.Exit(1)
}
