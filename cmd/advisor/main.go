// Command advisor runs the model configuration advisor on one of the
// built-in data sets and reports the selected configuration. The final
// configuration can be saved in F²DB's storage format for later use with
// the f2dbcli tool.
//
// Usage:
//
//	advisor -dataset tourism -progress
//	advisor -dataset gen1k -alpha 0.5 -out config.f2db
//	advisor -csv facts.csv -dims "product;location=city<region" -period 12
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cubefc/internal/core"
	"cubefc/internal/csvload"
	"cubefc/internal/cube"
	"cubefc/internal/experiments"
	"cubefc/internal/f2db"
)

func main() {
	dataset := flag.String("dataset", "tourism", "data set: tourism, sales, energy, gen1k, gen10k, cubeN (synthetic cube with ~N nodes, e.g. cube100k)")
	seed := flag.Int64("seed", 42, "RNG seed for the multi-source probes")
	alpha := flag.Float64("alpha", 0, "pin the acceptance parameter alpha (0 = paper schedule 0.1..1.0)")
	maxModels := flag.Int("max-models", 0, "stop criterion: maximum number of models (0 = off)")
	targetError := flag.Float64("target-error", 0, "stop criterion: target overall SMAPE (0 = off)")
	progress := flag.Bool("progress", false, "print one line per advisor iteration")
	sampleSize := flag.Int("sample-size", 0, "estimate indicators and derivations from this many sampled base series per node (0 = exact)")
	exactMode := flag.Bool("exact", false, "force exact computation even when -sample-size is set")
	lazy := flag.Bool("lazy", false, "build the cube with on-demand node materialization (large cubes)")
	out := flag.String("out", "", "save the final configuration to this file")
	paperScale := flag.Bool("paper-scale", false, "use paper-sized data sets")
	csvPath := flag.String("csv", "", "load a fact-table CSV instead of a built-in data set")
	dimSpec := flag.String("dims", "", "dimension spec for -csv, e.g. \"product;location=city<region\"")
	period := flag.Int("period", 1, "seasonal period for -csv data")
	flag.Parse()

	scale := experiments.Quick
	if *paperScale {
		scale = experiments.Paper
	}
	buildStart := time.Now()
	var g *cube.Graph
	name := *dataset
	if *csvPath != "" {
		specs, err := csvload.ParseSpec(*dimSpec)
		if err != nil {
			fail(err)
		}
		fh, err := os.Open(*csvPath)
		if err != nil {
			fail(err)
		}
		dims, base, err := csvload.Load(fh, specs, csvload.Options{Period: *period})
		cerr := fh.Close()
		if err != nil {
			fail(err)
		}
		if cerr != nil {
			fail(cerr)
		}
		g, err = cube.NewGraph(dims, base)
		if err != nil {
			fail(err)
		}
		name = *csvPath
	} else {
		ds, err := experiments.LoadDataset(*dataset, scale)
		if err != nil {
			fail(err)
		}
		if *lazy {
			g, err = ds.LazyGraph()
		} else {
			g, err = ds.Graph()
		}
		if err != nil {
			fail(err)
		}
		name = ds.Name
	}
	fmt.Printf("data set %s: %d base series, %d graph nodes, %d observations (graph built in %v)\n",
		name, len(g.BaseIDs), g.NumNodes(), g.Length, time.Since(buildStart).Round(time.Millisecond))

	opts := core.Options{
		Seed:        *seed,
		MaxModels:   *maxModels,
		TargetError: *targetError,
		SampleSize:  *sampleSize,
		Exact:       *exactMode,
	}
	if *alpha > 0 {
		opts.Alpha0, opts.AlphaMax = *alpha, *alpha
	}
	if *progress {
		opts.OnIteration = func(s core.Snapshot) {
			fmt.Printf("  it=%-3d alpha=%.2f gamma=%+.2f cand=%-3d created=%d accepted=%d rejected=%d deleted=%d err=%.4f models=%d\n",
				s.Iteration, s.Alpha, s.Gamma, s.Candidates, s.Created, s.Accepted, s.Rejected, s.Deleted, s.Error, s.Models)
		}
	}

	var lastBound float64
	if *sampleSize > 0 && !*exactMode {
		prev := opts.OnIteration
		opts.OnIteration = func(s core.Snapshot) {
			lastBound = s.SampleBound
			if prev != nil {
				prev(s)
			}
		}
	}

	start := time.Now()
	cfg, err := core.Run(g, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("advisor finished in %v: error=%.4f models=%d (%.1f%% of nodes) creation-cost=%.3fs\n",
		time.Since(start).Round(time.Millisecond), cfg.Error(), cfg.NumModels(),
		100*float64(cfg.NumModels())/float64(g.NumNodes()), cfg.CostSeconds)
	if *sampleSize > 0 && !*exactMode {
		fmt.Printf("sampled estimation: K=%d, mean relative sampling error bound %.4f\n", *sampleSize, lastBound)
	}

	cfg.Report().Fprint(os.Stdout)

	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := f2db.SaveConfiguration(fh, cfg); err != nil {
			fail(err)
		}
		if err := fh.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("configuration saved to %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}
