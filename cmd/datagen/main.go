// Command datagen emits one of the built-in evaluation data sets as CSV
// (fact-table layout: one row per observation of every base series), so
// the synthetic data can be inspected or loaded into other systems.
//
// Usage:
//
//	datagen -dataset sales > sales.csv
//	datagen -dataset gen1k -seed 7 -out gen1k.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"cubefc/internal/datasets"
)

func main() {
	dataset := flag.String("dataset", "tourism", "data set: tourism, sales, energy, genX (X = #base series, e.g. gen5000)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	ds, err := load(*dataset, *seed)
	if err != nil {
		fail(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := fh.Close(); err != nil {
				fail(err)
			}
		}()
		w = fh
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Header: time, one column per dimension (finest level), measure.
	fmt.Fprint(bw, "time")
	for _, dim := range ds.Dims {
		fmt.Fprintf(bw, ",%s", dim.Levels[0])
	}
	fmt.Fprintln(bw, ",value")

	for _, b := range ds.Base {
		for t, v := range b.Series.Values {
			fmt.Fprint(bw, t)
			for _, m := range b.Members {
				fmt.Fprintf(bw, ",%s", m)
			}
			fmt.Fprintf(bw, ",%g\n", v)
		}
	}
}

func load(name string, seed int64) (*datasets.Dataset, error) {
	switch name {
	case "tourism":
		return datasets.Tourism(seed), nil
	case "sales":
		return datasets.Sales(seed), nil
	case "energy":
		return datasets.Energy(seed, datasets.EnergyOptions{}), nil
	default:
		if len(name) > 3 && name[:3] == "gen" {
			x, err := strconv.Atoi(name[3:])
			if err != nil || x < 1 {
				return nil, fmt.Errorf("datagen: malformed genX data set %q", name)
			}
			return datasets.GenX(seed, x, datasets.GenXOptions{}), nil
		}
		return nil, fmt.Errorf("datagen: unknown data set %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
