package cubefc_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Section VI), each regenerating the corresponding experiment on the
// quick-scale data sets, plus micro-benchmarks for the engine hot paths.
// The full-size figures (paper-scale sweeps) are produced by
// cmd/experiments -scale paper; these benchmarks keep every iteration in
// the seconds range so `go test -bench=.` stays tractable.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"cubefc"
	"cubefc/internal/core"
	"cubefc/internal/datasets"
	"cubefc/internal/experiments"
	"cubefc/internal/f2db"
	"cubefc/internal/forecast"
	"cubefc/internal/hierarchical"
	"cubefc/internal/indicator"
	"cubefc/internal/timeseries"
	"cubefc/internal/workload"
)

// --- Figure 7: accuracy analysis -----------------------------------------

func benchFig7(b *testing.B, dataset string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig7(dataset, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		_ = tab
	}
}

func BenchmarkFig7aTourism(b *testing.B) { benchFig7(b, "tourism") }
func BenchmarkFig7bSales(b *testing.B)   { benchFig7(b, "sales") }
func BenchmarkFig7cEnergy(b *testing.B)  { benchFig7(b, "energy") }
func BenchmarkFig7dGen(b *testing.B)     { benchFig7(b, "gen10k") }

// --- Figure 8: parameter analysis ----------------------------------------

func BenchmarkFig8aIndicatorCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8a(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8bIndicatorSize sweeps |I| on the Sales data set (the full
// four-data-set sweep is cmd/experiments -fig 8b).
func BenchmarkFig8bIndicatorSize(b *testing.B) {
	ds, err := experiments.LoadDataset("sales", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.2, 0.6, 1.0} {
			if _, err := core.Run(g, core.Options{Seed: 42, IndicatorFraction: frac}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8cGammaControl measures advisor runtime under an artificial
// per-model creation delay — the γ-control experiment.
func BenchmarkFig8cGammaControl(b *testing.B) {
	ds, err := experiments.LoadDataset("sales", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	for _, delay := range []time.Duration{0, 10 * time.Millisecond} {
		b.Run(fmt.Sprintf("delay=%v", delay), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(g, core.Options{Seed: 42, CreationDelay: delay}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8dErrorUnderDelay runs the error-vs-delay experiment point.
func BenchmarkFig8dErrorUnderDelay(b *testing.B) {
	ds, err := experiments.LoadDataset("tourism", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, core.Options{Seed: 42, CreationDelay: 5 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8eAlphaSweep runs pinned-α advisor points (error vs α).
func BenchmarkFig8eAlphaSweep(b *testing.B) {
	ds, err := experiments.LoadDataset("tourism", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TraceAlpha(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8fModelFraction measures the relative model count at α=0.5
// (the <15% point of Figure 8f).
func BenchmarkFig8fModelFraction(b *testing.B) {
	ds, err := experiments.LoadDataset("sales", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := core.Run(g, core.Options{Seed: 42, AlphaMax: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		if frac := float64(cfg.NumModels()) / float64(g.NumNodes()); frac > 0.5 {
			b.Fatalf("α=0.5 model fraction %v unexpectedly high", frac)
		}
	}
}

// --- Figure 9: runtime analysis ------------------------------------------

// BenchmarkFig9aScalability measures configuration-creation time per
// approach on a growing GenX (scaled down; the paper's 1k–100k sweep is
// cmd/experiments -fig 9a -scale paper).
func BenchmarkFig9aScalability(b *testing.B) {
	for _, x := range []int{200, 1000} {
		ds := datasets.GenX(42, x, datasets.GenXOptions{})
		g, err := ds.Graph()
		if err != nil {
			b.Fatal(err)
		}
		for _, ap := range []string{"TopDown", "BottomUp", "Advisor"} {
			b.Run(fmt.Sprintf("%s/x=%d", ap, x), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, _, err := experiments.RunApproach(ap, g, hierarchical.Options{},
						core.Options{Seed: 42, AlphaMax: 0.5})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9bQueryInsert measures the average forecast-query cost under
// interleaved inserts for two query/insert ratios.
func BenchmarkFig9bQueryInsert(b *testing.B) {
	for _, ratio := range []int{1, 10} {
		b.Run(fmt.Sprintf("ratio=%d", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds := datasets.GenX(42, 300, datasets.GenXOptions{})
				g, err := ds.Graph()
				if err != nil {
					b.Fatal(err)
				}
				cfg, err := core.Run(g, core.Options{Seed: 42, AlphaMax: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				db, err := f2db.Open(g, cfg, f2db.Options{Strategy: f2db.TimeBased{Every: 4}})
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.New(g, 42)
				b.StartTimer()
				res, err := workload.Run(db, gen, workload.Options{TimePoints: 5, QueriesPerInsert: ratio})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.AvgQueryTime.Nanoseconds()), "ns/query")
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §6) --------------------------------------

func benchAblation(b *testing.B, opts core.Options) {
	ds, err := experiments.LoadDataset("sales", experiments.Quick)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	opts.Seed = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := core.Run(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cfg.Error(), "smape")
		b.ReportMetric(float64(cfg.NumModels()), "models")
	}
}

func BenchmarkAblationFull(b *testing.B) { benchAblation(b, core.Options{}) }
func BenchmarkAblationNoStabilityIndicator(b *testing.B) {
	benchAblation(b, core.Options{Indicator: indicator.Config{StabilityWeight: -1}})
}
func BenchmarkAblationFixedGamma(b *testing.B) {
	benchAblation(b, core.Options{FixedGamma: true, Gamma0: 1})
}
func BenchmarkAblationNoMultiSource(b *testing.B) {
	benchAblation(b, core.Options{MultiSourceProbes: -1})
}
func BenchmarkAblationNoDeletion(b *testing.B) {
	benchAblation(b, core.Options{DisableDeletion: true})
}

// --- Micro-benchmarks ------------------------------------------------------

func BenchmarkGraphBuild(b *testing.B) {
	ds := datasets.GenX(42, 1000, datasets.GenXOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Graph(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHoltWintersFit(b *testing.B) {
	ds := datasets.Sales(42)
	s := ds.Base[0].Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := forecast.NewHoltWinters(12, forecast.Additive)
		if err := m.Fit(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARIMAFit(b *testing.B) {
	ds := datasets.Sales(42)
	s := ds.Base[0].Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := forecast.NewARIMA(forecast.Order{P: 1, D: 1, Q: 1}, forecast.Order{}, 12)
		if err := m.Fit(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndicatorLocal(b *testing.B) {
	ds := datasets.Tourism(42)
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	targets := g.ClosestNodes(g.TopID, 44)
	cfg := indicator.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indicator.ComputeLocal(g, g.TopID, targets, cfg)
	}
}

func BenchmarkForecastQuery(b *testing.B) {
	g := buildCube(b, 5)
	cfg, err := cubefc.Advise(g, cubefc.AdvisorOptions{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	db, err := cubefc.OpenDB(g, cfg, cubefc.DBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const q = "SELECT time, SUM(x) FROM facts WHERE region = 'R1' GROUP BY time AS OF now() + '1 step'"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecastNodeDirect(b *testing.B) {
	g := buildCube(b, 6)
	cfg, err := cubefc.Advise(g, cubefc.AdvisorOptions{Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	db, err := cubefc.OpenDB(g, cfg, cubefc.DBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ForecastNode(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertBatch(b *testing.B) {
	ds := datasets.GenX(42, 200, datasets.GenXOptions{})
	g, err := ds.Graph()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := core.Run(g, core.Options{Seed: 42, AlphaMax: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	db, err := f2db.Open(g, cfg, f2db.Options{})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(g, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := gen.NextBatch()
		for _, id := range g.BaseIDs {
			if err := db.InsertBase(id, batch[id]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSMAPE(b *testing.B) {
	actual := make([]float64, 1000)
	fc := make([]float64, 1000)
	for i := range actual {
		actual[i] = float64(i + 1)
		fc[i] = float64(i + 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timeseries.SMAPE(actual, fc)
	}
}

func BenchmarkCSVLoad(b *testing.B) {
	// Render the sales data set as CSV once, then benchmark loading it.
	ds := datasets.Sales(42)
	var sb strings.Builder
	sb.WriteString("time,product,country,value\n")
	for _, bs := range ds.Base {
		for t, v := range bs.Series.Values {
			fmt.Fprintf(&sb, "%d,%s,%s,%g\n", t, bs.Members[0], bs.Members[1], v)
		}
	}
	data := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := cubefc.LoadCSV(strings.NewReader(data), "product;country", cubefc.CSVOptions{Period: 12})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatabaseSnapshot(b *testing.B) {
	g := buildCube(b, 7)
	cfg, err := cubefc.Advise(g, cubefc.AdvisorOptions{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	db, err := cubefc.OpenDB(g, cfg, cubefc.DBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := cubefc.SaveDatabase(&buf, db); err != nil {
			b.Fatal(err)
		}
		if _, err := cubefc.LoadDatabase(&buf, cubefc.DBOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrillDownQuery(b *testing.B) {
	g := buildCube(b, 8)
	cfg, err := cubefc.Advise(g, cubefc.AdvisorOptions{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	db, err := cubefc.OpenDB(g, cfg, cubefc.DBOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const q = "SELECT time, city, SUM(x) FROM facts WHERE product = 'P1' GROUP BY time, city AS OF now() + '2 steps' WITH INTERVAL 95"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
