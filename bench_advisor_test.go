package cubefc_test

// BenchmarkAdvisorScale measures time-to-first-accepted-configuration of
// the advisor across cube sizes, comparing the exact/eager baseline (full
// graph materialization, exact indicators and derivation) against the
// sampled/lazy pipeline (on-demand node materialization, reservoir-sampled
// indicators, FlashP-style sampled derivation). Each iteration includes
// graph construction: that is the cost a fresh cube pays before its first
// advisor answer. Results are recorded in BENCH_advisor.json.

import (
	"fmt"
	"testing"

	"cubefc/internal/core"
	"cubefc/internal/cube"
	"cubefc/internal/datasets"
)

// advisorFirstConfig builds the graph in the requested mode and runs the
// advisor until its first accepted configuration change (or hard stop).
func advisorFirstConfig(b *testing.B, d *datasets.Dataset, lazy bool, sampleSize int) {
	var g *cube.Graph
	var err error
	if lazy {
		g, err = d.LazyGraph()
	} else {
		g, err = d.Graph()
	}
	if err != nil {
		b.Fatal(err)
	}
	accepted := 0
	a, err := core.NewAdvisor(g, core.Options{
		Seed:        42,
		Parallelism: 2,
		SampleSize:  sampleSize,
		OnIteration: func(s core.Snapshot) { accepted += s.Accepted },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 4 && accepted == 0; i++ {
		done, err := a.Step()
		if err != nil {
			b.Fatal(err)
		}
		if done {
			break
		}
	}
	if a.Configuration().NumModels() < 1 {
		b.Fatal("no model configured")
	}
}

func BenchmarkAdvisorScale(b *testing.B) {
	for _, nodes := range []int{1_000, 10_000, 100_000} {
		opts := datasets.CubeGenForNodes(nodes, 2)
		d := datasets.GenCube(1, opts)
		for _, mode := range []struct {
			name       string
			lazy       bool
			sampleSize int
		}{
			{"exact-eager", false, 0},
			{"sampled-lazy", true, 32},
		} {
			b.Run(fmt.Sprintf("nodes=%d/%s", opts.NumNodes(), mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					advisorFirstConfig(b, d, mode.lazy, mode.sampleSize)
				}
			})
		}
	}
}
